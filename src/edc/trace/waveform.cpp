#include "edc/trace/waveform.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "edc/common/check.h"

namespace edc::trace {

Waveform::Waveform(Seconds t0, Seconds dt, std::vector<double> samples)
    : t0_(t0), dt_(dt), samples_(std::move(samples)) {
  EDC_CHECK(samples_.size() < 2 || dt_ > 0.0, "sample spacing must be positive");
}

Waveform Waveform::sample(const std::function<double(Seconds)>& fn, Seconds t0,
                          Seconds t1, std::size_t n) {
  EDC_CHECK(n >= 2, "need at least two samples");
  EDC_CHECK(t1 > t0, "time span must be positive");
  const Seconds dt = (t1 - t0) / static_cast<double>(n - 1);
  std::vector<double> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples[i] = fn(t0 + dt * static_cast<double>(i));
  }
  return Waveform(t0, dt, std::move(samples));
}

Seconds Waveform::t_end() const noexcept {
  if (samples_.size() < 2) return t0_;
  return t0_ + dt_ * static_cast<double>(samples_.size() - 1);
}

double Waveform::at(Seconds t) const {
  EDC_CHECK(!samples_.empty(), "empty waveform");
  if (samples_.size() == 1 || t <= t0_) return samples_.front();
  if (t >= t_end()) return samples_.back();
  const double pos = (t - t0_) / dt_;
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  return samples_[idx] + frac * (samples_[idx + 1] - samples_[idx]);
}

Waveform Waveform::map(const std::function<double(double)>& fn) const {
  std::vector<double> out(samples_.size());
  std::transform(samples_.begin(), samples_.end(), out.begin(), fn);
  return Waveform(t0_, dt_, std::move(out));
}

Waveform Waveform::resample(std::size_t n) const {
  EDC_CHECK(!samples_.empty(), "empty waveform");
  return sample([this](Seconds t) { return at(t); }, t0_, t_end(), n);
}

double Waveform::min() const {
  EDC_CHECK(!samples_.empty(), "empty waveform");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Waveform::max() const {
  EDC_CHECK(!samples_.empty(), "empty waveform");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Waveform::mean() const {
  EDC_CHECK(!samples_.empty(), "empty waveform");
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

double Waveform::rms() const {
  EDC_CHECK(!samples_.empty(), "empty waveform");
  double sq = 0.0;
  for (double s : samples_) sq += s * s;
  return std::sqrt(sq / static_cast<double>(samples_.size()));
}

double Waveform::integral() const {
  if (samples_.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    acc += 0.5 * (samples_[i - 1] + samples_[i]) * dt_;
  }
  return acc;
}

ActivityIndex::ActivityIndex(const Waveform& wave) {
  const auto& samples = wave.samples();
  if (samples.empty()) return;
  constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();
  if (samples.size() == 1) {
    if (samples.front() != 0.0) segments_.push_back(Segment{-kInf, kInf});
    return;
  }
  const Seconds t0 = wave.t0();
  const Seconds dt = wave.dt();
  const std::size_t cells = samples.size() - 1;
  for (std::size_t i = 0; i < cells;) {
    if (samples[i] == 0.0 && samples[i + 1] == 0.0) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < cells && !(samples[j] == 0.0 && samples[j + 1] == 0.0)) ++j;
    segments_.push_back(Segment{t0 + dt * static_cast<double>(i),
                                t0 + dt * static_cast<double>(j)});
    i = j;
  }
  // Edge clamping: outside [t0, t_end] the waveform holds the edge sample.
  if (samples.front() != 0.0) {
    if (segments_.empty() || segments_.front().begin > t0) {
      segments_.insert(segments_.begin(), Segment{-kInf, t0});
    } else {
      segments_.front().begin = -kInf;
    }
  }
  if (samples.back() != 0.0) {
    const Seconds t_end = wave.t_end();
    if (segments_.empty() || segments_.back().end < t_end) {
      segments_.push_back(Segment{t_end, kInf});
    } else {
      segments_.back().end = kInf;
    }
  }
}

Seconds ActivityIndex::zero_until(Seconds t) const {
  // First segment that ends after t (segments are sorted and disjoint).
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](Seconds value, const Segment& s) { return value < s.end; });
  if (it == segments_.end()) return std::numeric_limits<Seconds>::infinity();
  return it->begin <= t ? t : it->begin;
}

void TraceSet::add(std::string name, Waveform wave) {
  names.push_back(std::move(name));
  waves.push_back(std::move(wave));
}

const Waveform* TraceSet::find(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return &waves[i];
  }
  return nullptr;
}

}  // namespace edc::trace
