// Energy-source interfaces.
//
// The paper's key observation (§I) is that a harvester is a *power* source
// with large temporal/spatial dynamics, unlike a battery's steady *energy*
// source. We model two physical presentation styles:
//
//  * VoltageSource — a Thevenin equivalent: open-circuit voltage v_oc(t)
//    behind a series resistance. Used for AC transducers that feed a
//    rectifier directly (micro wind turbine, kinetic/piezo, signal
//    generator). This is the style of Fig 1(a), Fig 7 and Fig 8.
//
//  * PowerSource — an available-power envelope P_h(t) as delivered by a
//    matched harvester front-end (indoor PV behind MPPT, RF field).
//    This is the style of Fig 1(b) and of the energy-neutral analyses.
//
// Both are pure functions of time (stochastic sources are seeded and
// pre-expand their randomness deterministically), so a simulation may query
// them at arbitrary instants and remain bit-reproducible.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "edc/common/units.h"

namespace edc::trace {

/// "Quiet forever" sentinel returned by the activity hints below.
inline constexpr Seconds kNeverActive = std::numeric_limits<Seconds>::infinity();

/// Shaves a safety margin (1 ns, scaled up for large timestamps) off a
/// computed activity horizon so floating-point error in the trigonometric /
/// phase arithmetic behind it can never turn a hint into an over-claim.
/// Hints must err quiet-side only; a nanosecond of lost horizon is
/// invisible next to any simulation step.
[[nodiscard]] inline Seconds conservative_horizon(Seconds u, Seconds not_before) {
  if (u == kNeverActive) return u;
  const Seconds margin = 1e-9 * (std::abs(u) < 1.0 ? 1.0 : std::abs(u));
  const Seconds shaved = u - margin;
  return shaved > not_before ? shaved : not_before;
}

class VoltageSource {
 public:
  virtual ~VoltageSource() = default;

  /// Open-circuit (unloaded) terminal voltage at time t.
  [[nodiscard]] virtual Volts open_circuit_voltage(Seconds t) const = 0;

  /// Thevenin series resistance (> 0).
  [[nodiscard]] virtual Ohms series_resistance() const = 0;

  /// Activity hint for event-horizon macro-stepping (sim::QuiescentEngine):
  /// the latest time u >= t such that open_circuit_voltage is *guaranteed*
  /// to stay within [floor, ceiling] at every instant of [t, u). Returning
  /// t claims nothing (the caller must sample); kNeverActive promises the
  /// bound holds forever. Overrides must be conservative — claiming quiet
  /// where the source could swing outside the bounds corrupts macro runs —
  /// but may under-claim freely (costs speed, never correctness).
  [[nodiscard]] virtual Seconds bounded_until(Volts floor, Volts ceiling,
                                              Seconds t) const {
    (void)floor;
    (void)ceiling;
    return t;
  }

  /// Piecewise-constant certification for the charge-span planner
  /// (circuit::SupplyDriver::plan_charge_span): the latest u >= t such
  /// that open_circuit_voltage is guaranteed to equal `*value` *exactly*
  /// at every instant of [t, u). Returning t claims nothing (the default,
  /// `*value` then unset); kNeverActive certifies a DC source. Unlike
  /// bounded_until's band this is an exactness contract — the quiescent
  /// engine substitutes the certified value into the closed-form
  /// rectifier+RC charge trajectory for the whole window, so
  /// "approximately constant" would corrupt macro runs. Err short-side
  /// only (a shaved horizon costs speed, never correctness).
  [[nodiscard]] virtual Seconds constant_until(Seconds t, Volts* value) const {
    (void)value;
    return t;
  }

  /// Piecewise-linear chord certificate for the ramp-span planner
  /// (circuit::SupplyDriver::plan_ramp_span). Over the half-open window
  /// [t, until) the open-circuit voltage is guaranteed to satisfy
  ///
  ///   value + slope*(s - t) + err_lo  <=  v_oc(s)  <=
  ///   value + slope*(s - t) + err_hi
  ///
  /// at every instant s. Unlike constant_until this is an *interval*
  /// contract: the chord may deviate from the true source, but the
  /// deviation is bounded by the certified envelope, and the quiescent
  /// engine's contractor re-queries with a smaller horizon until the
  /// envelope fits its span tolerance. Over-claiming (an envelope the true
  /// source escapes anywhere in the window) corrupts macro runs;
  /// under-claiming (wide envelopes, short windows, or valid=false) only
  /// costs speed.
  struct LinearCert {
    bool valid = false;
    Volts value = 0.0;    ///< chord value at the query instant t
    double slope = 0.0;   ///< chord slope [V/s]
    Volts err_lo = 0.0;   ///< envelope low side (<= 0)
    Volts err_hi = 0.0;   ///< envelope high side (>= 0)
    Seconds until = 0.0;  ///< certificate holds on [t, until)
  };

  /// Certifies a chord over [t, min(until, t + horizon)). The default
  /// derives a zero-slope, zero-error chord from constant_until, so every
  /// exactly-constant window is automatically also a linear window;
  /// curved sources (sine arcs, gust envelopes, trace cells) override
  /// with genuine chords + curvature-bounded envelopes.
  [[nodiscard]] virtual LinearCert linear_until(Seconds t,
                                                Seconds horizon) const {
    Volts value = 0.0;
    const Seconds until = constant_until(t, &value);
    if (!(until > t) || !(horizon > 0.0)) return {};
    LinearCert cert;
    cert.valid = true;
    cert.value = value;
    cert.until = std::min(until, t + horizon);
    return cert;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

class PowerSource {
 public:
  virtual ~PowerSource() = default;

  /// Power available for harvest at time t (>= 0), at the converter input.
  [[nodiscard]] virtual Watts available_power(Seconds t) const = 0;

  /// Activity hint for event-horizon macro-stepping: the latest time u >= t
  /// such that available_power is *guaranteed* to be 0 at every instant of
  /// [t, u). Returning t claims nothing; kNeverActive means the source is
  /// dead forever. Same conservativeness contract as
  /// VoltageSource::bounded_until.
  [[nodiscard]] virtual Seconds dormant_until(Seconds t) const { return t; }

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace edc::trace
