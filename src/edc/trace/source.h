// Energy-source interfaces.
//
// The paper's key observation (§I) is that a harvester is a *power* source
// with large temporal/spatial dynamics, unlike a battery's steady *energy*
// source. We model two physical presentation styles:
//
//  * VoltageSource — a Thevenin equivalent: open-circuit voltage v_oc(t)
//    behind a series resistance. Used for AC transducers that feed a
//    rectifier directly (micro wind turbine, kinetic/piezo, signal
//    generator). This is the style of Fig 1(a), Fig 7 and Fig 8.
//
//  * PowerSource — an available-power envelope P_h(t) as delivered by a
//    matched harvester front-end (indoor PV behind MPPT, RF field).
//    This is the style of Fig 1(b) and of the energy-neutral analyses.
//
// Both are pure functions of time (stochastic sources are seeded and
// pre-expand their randomness deterministically), so a simulation may query
// them at arbitrary instants and remain bit-reproducible.
#pragma once

#include <string>

#include "edc/common/units.h"

namespace edc::trace {

class VoltageSource {
 public:
  virtual ~VoltageSource() = default;

  /// Open-circuit (unloaded) terminal voltage at time t.
  [[nodiscard]] virtual Volts open_circuit_voltage(Seconds t) const = 0;

  /// Thevenin series resistance (> 0).
  [[nodiscard]] virtual Ohms series_resistance() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

class PowerSource {
 public:
  virtual ~PowerSource() = default;

  /// Power available for harvest at time t (>= 0), at the converter input.
  [[nodiscard]] virtual Watts available_power(Seconds t) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace edc::trace
