#include "edc/trace/power_sources.h"

#include <algorithm>
#include <cmath>

#include "edc/common/check.h"

namespace edc::trace {

namespace {
constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;
}  // namespace

// ------------------------------------------------------------- Constant ----

ConstantPowerSource::ConstantPowerSource(Watts power) : power_(power) {
  EDC_CHECK(power >= 0.0, "power must be non-negative");
}

std::string ConstantPowerSource::name() const {
  return "constant-" + std::to_string(power_ * 1e6) + "uW";
}

// ----------------------------------------------------------------- PV ------

IndoorPhotovoltaicSource::IndoorPhotovoltaicSource(const Params& params,
                                                   std::uint64_t seed, int days)
    : params_(params), days_(days) {
  EDC_CHECK(days >= 1, "need at least one day");
  EDC_CHECK(params.day_current_ua >= params.night_current_ua,
            "day current must be >= night current");
  EDC_CHECK(params.day_end_h > params.day_start_h, "day must end after it starts");
  EDC_CHECK(params.operating_voltage > 0.0, "operating voltage must be positive");
  Rng rng(seed);
  day_strength_.resize(static_cast<std::size_t>(days));
  for (double& s : day_strength_) {
    s = std::clamp(1.0 + params.day_to_day_jitter * rng.normal(), 0.7, 1.3);
  }
  // Occupancy noise band-limited to ~1/minute: one sample per 30 s.
  const std::size_t n = static_cast<std::size_t>(days) * 2880 + 2;
  std::vector<double> noise(n);
  double state = 0.0;
  for (double& x : noise) {
    // AR(1) with ~5-minute correlation time.
    state = 0.9 * state + 0.436 * rng.normal();  // stationary sigma ~= 1
    x = state;
  }
  noise_ = Waveform(0.0, 30.0, std::move(noise));
}

double IndoorPhotovoltaicSource::current_ua(Seconds t) const {
  if (t < 0.0) t = 0.0;
  const int day = std::min(static_cast<int>(t / kSecondsPerDay), days_ - 1);
  const double hour = (t - day * kSecondsPerDay) / kSecondsPerHour;
  // Smooth plateau: product of two logistic shoulders.
  const double k = 4.0 / params_.shoulder_h;  // logistic steepness
  const double rise = 1.0 / (1.0 + std::exp(-k * (hour - params_.day_start_h)));
  const double fall = 1.0 / (1.0 + std::exp(k * (hour - params_.day_end_h)));
  const double plateau = rise * fall * day_strength_[static_cast<std::size_t>(day)];
  double ua = params_.night_current_ua +
              (params_.day_current_ua - params_.night_current_ua) * plateau;
  // Occupancy flicker only while lights are on.
  ua += params_.noise_ua * plateau * noise_.at(t);
  return std::max(ua, 0.0);
}

Watts IndoorPhotovoltaicSource::available_power(Seconds t) const {
  return current_ua(t) * 1e-6 * params_.operating_voltage;
}

// -------------------------------------------------------------- Solar ------

OutdoorSolarSource::OutdoorSolarSource(const Params& params, std::uint64_t seed,
                                       int days)
    : params_(params), days_(days) {
  EDC_CHECK(days >= 1, "need at least one day");
  EDC_CHECK(params.panel_peak > 0.0, "panel peak must be positive");
  EDC_CHECK(params.sunset_h > params.sunrise_h, "sunset must follow sunrise");
  EDC_CHECK(params.cloud_depth >= 0.0 && params.cloud_depth <= 1.0,
            "cloud depth must be in [0,1]");
  EDC_CHECK(params.cloud_correlation > 0.0, "cloud correlation must be positive");
  Rng rng(seed);
  day_strength_.resize(static_cast<std::size_t>(days));
  for (double& s : day_strength_) {
    s = std::clamp(1.0 + params.day_to_day_jitter * rng.normal(), 0.25, 1.4);
  }
  // Cloud attenuation: AR(1) field sampled every cloud_correlation/10,
  // squashed into [0, 1] and scaled by cloud_depth.
  const Seconds dt = params.cloud_correlation / 10.0;
  const auto n = static_cast<std::size_t>(days * kSecondsPerDay / dt) + 2;
  std::vector<double> atten(n);
  double state = 0.0;
  const double rho = std::exp(-dt / params.cloud_correlation);
  const double drive = std::sqrt(1.0 - rho * rho);
  for (double& a : atten) {
    state = rho * state + drive * rng.normal();
    // Logistic squash: mostly clear, occasional deep dips.
    const double cloudiness = 1.0 / (1.0 + std::exp(-1.5 * (state - 1.0)));
    a = 1.0 - params.cloud_depth * cloudiness;
  }
  cloud_ = Waveform(0.0, dt, std::move(atten));
}

Watts OutdoorSolarSource::clear_sky_power(Seconds t) const {
  if (t < 0.0) t = 0.0;
  const int day = std::min(static_cast<int>(t / kSecondsPerDay), days_ - 1);
  const double hour = (t - day * kSecondsPerDay) / kSecondsPerHour;
  if (hour <= params_.sunrise_h || hour >= params_.sunset_h) return 0.0;
  const double phase =
      (hour - params_.sunrise_h) / (params_.sunset_h - params_.sunrise_h);
  const double elevation = std::sin(phase * 3.14159265358979323846);
  return params_.panel_peak * elevation *
         day_strength_[static_cast<std::size_t>(day)];
}

Watts OutdoorSolarSource::available_power(Seconds t) const {
  return std::max(clear_sky_power(t) * cloud_.at(t), 0.0);
}

Seconds OutdoorSolarSource::dormant_until(Seconds t) const {
  // Mirrors clear_sky_power's clamping: negative t maps to the first day's
  // start, and t past the modelled horizon keeps the last day's clock
  // running (so the sun never rises again there).
  const Seconds t_clamped = std::max(t, 0.0);
  const int day = std::min(static_cast<int>(t_clamped / kSecondsPerDay), days_ - 1);
  const double hour = (t_clamped - day * kSecondsPerDay) / kSecondsPerHour;
  if (hour > params_.sunrise_h && hour < params_.sunset_h) return t;  // daylight
  if (hour <= params_.sunrise_h) {
    const Seconds sunrise =
        day * kSecondsPerDay + params_.sunrise_h * kSecondsPerHour;
    return conservative_horizon(sunrise, t);
  }
  if (day + 1 >= days_) return kNeverActive;  // clamped clock: permanent night
  const Seconds sunrise =
      (day + 1) * kSecondsPerDay + params_.sunrise_h * kSecondsPerHour;
  return conservative_horizon(sunrise, t);
}

// ----------------------------------------------------------------- RF ------

RfFieldSource::RfFieldSource(const Params& params, std::uint64_t seed,
                             Seconds horizon)
    : params_(params) {
  EDC_CHECK(params.field_power >= 0.0, "field power must be non-negative");
  EDC_CHECK(params.burst_length > 0.0, "burst length must be positive");
  EDC_CHECK(params.burst_period > params.burst_length,
            "burst period must exceed burst length");
  EDC_CHECK(horizon > 0.0, "horizon must be positive");
  Rng rng(seed);
  Seconds t = 0.0;
  while (t < horizon) {
    burst_starts_.push_back(t);
    double period = params.burst_period;
    if (params.jitter > 0.0) {
      period = std::max(params.burst_length * 1.05,
                        period * (1.0 + params.jitter * rng.normal()));
    }
    t += period;
  }
}

Watts RfFieldSource::available_power(Seconds t) const {
  // Bursts are sorted; binary search for the burst starting at or before t.
  auto it = std::upper_bound(burst_starts_.begin(), burst_starts_.end(), t);
  if (it == burst_starts_.begin()) return 0.0;
  const Seconds start = *std::prev(it);
  return (t - start) <= params_.burst_length ? params_.field_power : 0.0;
}

Seconds RfFieldSource::dormant_until(Seconds t) const {
  if (params_.field_power <= 0.0) return kNeverActive;
  const auto it = std::upper_bound(burst_starts_.begin(), burst_starts_.end(), t);
  if (it != burst_starts_.begin() &&
      (t - *std::prev(it)) <= params_.burst_length) {
    return t;  // inside a burst
  }
  // Burst start times are the exact doubles available_power compares
  // against, so the horizon needs no safety margin: every instant strictly
  // before the next start is dead by the same comparison.
  return it == burst_starts_.end() ? kNeverActive : *it;
}

// --------------------------------------------------------- Coupled RF ------

CoupledRfFieldSource::CoupledRfFieldSource(const RfFieldSource::Params& field,
                                           std::uint64_t seed, Seconds horizon,
                                           double gain, Seconds window_period,
                                           double window_duty, Seconds window_phase)
    : field_(field, seed, horizon), gain_(gain) {
  EDC_CHECK(gain >= 0.0, "path gain must be non-negative");
  EDC_CHECK(window_period >= 0.0, "window period must be non-negative");
  if (window_period > 0.0) {
    EDC_CHECK(window_duty > 0.0 && window_duty <= 1.0,
              "window duty must be in (0, 1]");
    EDC_CHECK(window_phase >= 0.0, "window phase must be non-negative");
    open_length_ = window_duty * window_period;
    // Precompute open-window starts past every instant the field can be
    // active (last burst start < horizon, active for burst_length more),
    // so dormant_until never runs off the end while the field is alive.
    const Seconds cover = horizon + field.burst_length + 2.0 * window_period;
    for (Seconds s = window_phase; s <= cover; s += window_period) {
      window_starts_.push_back(s);
    }
  }
}

bool CoupledRfFieldSource::window_open(Seconds t) const {
  if (window_starts_.empty()) return true;
  const auto it = std::upper_bound(window_starts_.begin(), window_starts_.end(), t);
  if (it == window_starts_.begin()) return false;  // before the first slot
  // Start times are the exact doubles dormant_until hands back, so the
  // open test needs no tolerance.
  return (t - *std::prev(it)) <= open_length_;
}

Watts CoupledRfFieldSource::available_power(Seconds t) const {
  if (!window_open(t)) return 0.0;
  return gain_ * field_.available_power(t);
}

Seconds CoupledRfFieldSource::dormant_until(Seconds t) const {
  if (gain_ <= 0.0) return kNeverActive;
  // Alternate the two exact quiet claims — "field dead until the next
  // burst" and "window closed until the next slot" — until both say t is
  // live (or one says quiet forever). Every advance crosses a certified
  // quiet interval, so the returned horizon can never over-claim.
  Seconds u = t;
  for (int step = 0; step < 64; ++step) {
    const Seconds field_live = field_.dormant_until(u);
    if (field_live == kNeverActive) return kNeverActive;
    if (field_live > u) {
      u = field_live;
      continue;
    }
    if (window_open(u)) return u;
    const auto it = std::upper_bound(window_starts_.begin(), window_starts_.end(), u);
    if (it == window_starts_.end()) return u;  // out of precomputed slots: claim nothing more
    u = *it;
  }
  return u;  // conservative: iteration cap reached, claim only what is proven
}

// ------------------------------------------------------------- Markov ------

MarkovOnOffPowerSource::MarkovOnOffPowerSource(Watts on_power, Seconds mean_on,
                                               Seconds mean_off, std::uint64_t seed,
                                               Seconds horizon)
    : on_power_(on_power) {
  EDC_CHECK(on_power >= 0.0, "power must be non-negative");
  EDC_CHECK(mean_on > 0.0 && mean_off > 0.0, "durations must be positive");
  EDC_CHECK(horizon > 0.0, "horizon must be positive");
  Rng rng(seed);
  Seconds t = 0.0;
  bool on = true;
  edges_.push_back(0.0);  // starts ON at t = 0
  while (t < horizon) {
    t += rng.exponential(on ? mean_on : mean_off);
    edges_.push_back(t);
    on = !on;
  }
}

Watts MarkovOnOffPowerSource::available_power(Seconds t) const {
  if (t < edges_.front()) return 0.0;
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), t);
  const auto idx = static_cast<std::size_t>(std::distance(edges_.begin(), it)) - 1;
  // Even index => ON interval (edges_[0] begins an ON interval).
  return (idx % 2 == 0) ? on_power_ : 0.0;
}

Seconds MarkovOnOffPowerSource::dormant_until(Seconds t) const {
  if (on_power_ <= 0.0) return kNeverActive;
  if (t < edges_.front()) return edges_.front();
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), t);
  const auto idx = static_cast<std::size_t>(std::distance(edges_.begin(), it)) - 1;
  if (idx % 2 == 0) return t;  // inside an ON dwell
  // Edge times are the exact doubles available_power compares against.
  return idx + 1 < edges_.size() ? edges_[idx + 1] : kNeverActive;
}

// ------------------------------------------------------------ Waveform -----

WaveformPowerSource::WaveformPowerSource(Waveform wave, std::string name)
    : wave_(std::move(wave)), name_(std::move(name)) {
  EDC_CHECK(!wave_.empty(), "waveform must not be empty");
  activity_ = ActivityIndex(wave_);
}

Watts WaveformPowerSource::available_power(Seconds t) const {
  return std::max(wave_.at(t), 0.0);
}

}  // namespace edc::trace
