#include "edc/trace/rng.h"

#include <cmath>

namespace edc::trace {

double Rng::normal() noexcept {
  // Marsaglia polar method; loop terminates with probability 1.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::exponential(double mean) noexcept {
  // Inverse CDF; guard the log argument away from 0.
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace edc::trace
