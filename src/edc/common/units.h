// Units and physical constants used throughout edc.
//
// All physical quantities are SI doubles. The aliases below document intent
// at API boundaries; they are plain typedefs (not strong types) so that
// numeric code stays readable, per the project convention documented in
// DESIGN.md §4.
#pragma once

namespace edc {

using Seconds = double;
using Hertz = double;
using Volts = double;
using Amps = double;
using Ohms = double;
using Farads = double;
using Joules = double;
using Watts = double;
using Celsius = double;

/// Cycle counts for the MCU model. 64 bits: a 16 MHz core running for a
/// simulated week executes ~1e13 cycles.
using Cycles = unsigned long long;

namespace unit {
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;
inline constexpr double milli = 1e-3;
inline constexpr double micro = 1e-6;
inline constexpr double nano = 1e-9;
inline constexpr double pico = 1e-12;
}  // namespace unit

}  // namespace edc
