// Precondition checking helpers.
//
// EDC_CHECK(cond, msg)  -- throws std::invalid_argument on failure; used to
//                          validate constructor arguments and public API
//                          preconditions.
// EDC_ASSERT(cond)      -- internal invariant; aborts via assert() in debug
//                          builds and is compiled out in release builds.
#pragma once

#include <cassert>
#include <stdexcept>
#include <string>

namespace edc::detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const std::string& msg) {
  throw std::invalid_argument(std::string("edc check failed: ") + expr +
                              (msg.empty() ? "" : (": " + msg)));
}

}  // namespace edc::detail

#define EDC_CHECK(cond, msg)                                \
  do {                                                      \
    if (!(cond)) ::edc::detail::throw_check_failure(#cond, (msg)); \
  } while (false)

#define EDC_ASSERT(cond) assert(cond)
