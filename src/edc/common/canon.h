// Canonical line-oriented text encoding shared by the spec and result
// serializers (edc/spec/serialize, edc/sim/result_io).
//
// The format is deliberately minimal: one field per line, two spaces of
// indentation per nesting level, `key value` for scalar fields, `key tag`
// for section headers / variant selectors, and bare numbers for array
// elements. Doubles are printed with std::to_chars (shortest form that
// round-trips exactly, locale-independent) so text -> double -> text is
// the identity for any double the writer produced; strings are quoted with
// C-style escapes. The Reader is strict: it consumes exactly the canonical
// lines in canonical order and throws FormatError on anything else, which
// is what makes the encoded bytes safe to hash and compare.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace edc::canon {

/// Thrown on any deviation from the canonical format (unknown field,
/// wrong order, malformed value, truncation, trailing bytes).
class FormatError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// ---- scalar <-> text ------------------------------------------------------

/// Shortest exactly-round-tripping decimal form of `v` (std::to_chars).
[[nodiscard]] std::string double_text(double v);

/// Strict inverses; the whole token must be consumed.
[[nodiscard]] double parse_double(std::string_view text);
[[nodiscard]] std::uint64_t parse_u64(std::string_view text);
[[nodiscard]] std::int64_t parse_i64(std::string_view text);

/// C-style quoting for arbitrary byte strings (\" \\ \n \r \t, \xHH for
/// other control bytes) and its inverse.
[[nodiscard]] std::string quote(std::string_view raw);
[[nodiscard]] std::string unquote(std::string_view text);

// ---- canonical writer -----------------------------------------------------

class Writer {
 public:
  /// Opens a section (`key` or `key tag`) and indents subsequent lines.
  void begin(std::string_view key, std::string_view tag = {});
  void end();

  void field(std::string_view key, double v);
  void field(std::string_view key, std::uint64_t v);
  void field(std::string_view key, int v);
  void field(std::string_view key, bool v);
  void field_size(std::string_view key, std::size_t v);
  void field_string(std::string_view key, std::string_view v);
  /// A bare array-element line (number only).
  void bare(double v);

  [[nodiscard]] std::string take();

 private:
  void open(std::string_view key, std::string_view value);

  std::string out_;
  int depth_ = 0;
};

// ---- strict canonical reader ----------------------------------------------

class Reader {
 public:
  /// Splits `text` into lines; every line must end in '\n'.
  explicit Reader(const std::string& text);

  /// Consumes a section header `key` (no tag) and indents.
  void begin(std::string_view key);
  /// Consumes `key tag` and indents; returns the tag.
  std::string_view begin_tagged(std::string_view key);
  void end();

  [[nodiscard]] double number(std::string_view key);
  [[nodiscard]] std::uint64_t u64(std::string_view key);
  [[nodiscard]] int integer(std::string_view key);
  [[nodiscard]] bool boolean(std::string_view key);
  [[nodiscard]] std::size_t size_value(std::string_view key);
  /// A single-token value (variant tag).
  [[nodiscard]] std::string_view tag(std::string_view key);
  /// A quoted string value (may contain spaces).
  [[nodiscard]] std::string text(std::string_view key);
  /// A bare array-element line.
  [[nodiscard]] double bare_number();

  /// Throws unless every line has been consumed.
  void finish() const;

 private:
  std::string_view take(std::string_view key);
  std::string_view require_value(std::string_view key);
  std::string_view next_line();

  std::vector<std::string_view> lines_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace edc::canon
