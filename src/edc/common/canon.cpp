#include "edc/common/canon.h"

#include <charconv>

namespace edc::canon {

// ---- scalar <-> text ------------------------------------------------------

std::string double_text(double v) {
  char buffer[64];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
  if (ec != std::errc{}) throw FormatError("double_text: to_chars failed");
  return std::string(buffer, ptr);
}

double parse_double(std::string_view text) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw FormatError("malformed number: '" + std::string(text) + "'");
  }
  return v;
}

std::uint64_t parse_u64(std::string_view text) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw FormatError("malformed unsigned integer: '" + std::string(text) + "'");
  }
  return v;
}

std::int64_t parse_i64(std::string_view text) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw FormatError("malformed integer: '" + std::string(text) + "'");
  }
  return v;
}

// ---- string escaping ------------------------------------------------------

std::string quote(std::string_view raw) {
  std::string out = "\"";
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20 || c == 0x7f) {
          const char hex[] = "0123456789abcdef";
          out += "\\x";
          out += hex[c >> 4];
          out += hex[c & 0xf];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw FormatError("malformed \\x escape in string");
}

}  // namespace

std::string unquote(std::string_view text) {
  if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
    throw FormatError("malformed string: '" + std::string(text) + "'");
  }
  std::string out;
  for (std::size_t i = 1; i + 1 < text.size(); ++i) {
    char c = text[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i + 2 >= text.size()) throw FormatError("truncated escape in string");
    c = text[++i];
    switch (c) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'x': {
        if (i + 2 >= text.size()) throw FormatError("truncated \\x escape");
        const int hi = hex_digit(text[i + 1]);
        const int lo = hex_digit(text[i + 2]);
        i += 2;
        out += static_cast<char>((hi << 4) | lo);
        break;
      }
      default:
        throw FormatError("unknown escape in string");
    }
  }
  return out;
}

// ---- Writer ---------------------------------------------------------------

void Writer::begin(std::string_view key, std::string_view tag) {
  open(key, tag);
  ++depth_;
}

void Writer::end() { --depth_; }

void Writer::field(std::string_view key, double v) { open(key, double_text(v)); }
void Writer::field(std::string_view key, std::uint64_t v) {
  open(key, std::to_string(v));
}
void Writer::field(std::string_view key, int v) { open(key, std::to_string(v)); }
void Writer::field(std::string_view key, bool v) { open(key, v ? "1" : "0"); }
void Writer::field_size(std::string_view key, std::size_t v) {
  open(key, std::to_string(v));
}
void Writer::field_string(std::string_view key, std::string_view v) {
  open(key, quote(v));
}
void Writer::bare(double v) { open(double_text(v), {}); }

std::string Writer::take() { return std::move(out_); }

void Writer::open(std::string_view key, std::string_view value) {
  out_.append(static_cast<std::size_t>(2 * depth_), ' ');
  out_.append(key);
  if (!value.empty()) {
    out_ += ' ';
    out_.append(value);
  }
  out_ += '\n';
}

// ---- Reader ---------------------------------------------------------------

Reader::Reader(const std::string& text) {
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      throw FormatError("missing trailing newline on last line");
    }
    lines_.push_back(std::string_view(text).substr(start, end - start));
    start = end + 1;
  }
}

std::string_view Reader::take(std::string_view key) {
  const std::string_view rest = next_line();
  if (rest.substr(0, key.size()) != key) {
    throw FormatError("expected field '" + std::string(key) + "', found '" +
                      std::string(rest) + "'");
  }
  std::string_view value = rest.substr(key.size());
  if (!value.empty()) {
    if (value.front() != ' ') {
      throw FormatError("expected field '" + std::string(key) + "', found '" +
                        std::string(rest) + "'");
    }
    value.remove_prefix(1);
    if (value.empty() || value.find(' ') != std::string_view::npos) {
      throw FormatError("malformed value on field '" + std::string(key) + "'");
    }
  }
  return value;
}

void Reader::begin(std::string_view key) {
  const std::string_view value = take(key);
  if (!value.empty()) {
    throw FormatError("unexpected value on section '" + std::string(key) + "'");
  }
  ++depth_;
}

std::string_view Reader::begin_tagged(std::string_view key) {
  const std::string_view tag = take(key);
  if (tag.empty()) {
    throw FormatError("missing variant tag on '" + std::string(key) + "'");
  }
  ++depth_;
  return tag;
}

void Reader::end() { --depth_; }

double Reader::number(std::string_view key) { return parse_double(require_value(key)); }
std::uint64_t Reader::u64(std::string_view key) { return parse_u64(require_value(key)); }
int Reader::integer(std::string_view key) {
  return static_cast<int>(parse_i64(require_value(key)));
}

bool Reader::boolean(std::string_view key) {
  const std::string_view v = require_value(key);
  if (v == "1") return true;
  if (v == "0") return false;
  throw FormatError("malformed boolean on field '" + std::string(key) + "'");
}

std::size_t Reader::size_value(std::string_view key) {
  return static_cast<std::size_t>(parse_u64(require_value(key)));
}

std::string_view Reader::tag(std::string_view key) { return require_value(key); }

std::string Reader::text(std::string_view key) {
  // Strings may contain spaces, so bypass the single-token check in take().
  const std::string_view rest = next_line();
  if (rest.substr(0, key.size()) != key || rest.size() <= key.size() ||
      rest[key.size()] != ' ') {
    throw FormatError("expected string field '" + std::string(key) + "'");
  }
  return unquote(rest.substr(key.size() + 1));
}

double Reader::bare_number() { return parse_double(next_line()); }

void Reader::finish() const {
  if (pos_ != lines_.size()) {
    throw FormatError("trailing content: '" + std::string(lines_[pos_]) + "'");
  }
}

std::string_view Reader::require_value(std::string_view key) {
  const std::string_view value = take(key);
  if (value.empty()) {
    throw FormatError("missing value on field '" + std::string(key) + "'");
  }
  return value;
}

std::string_view Reader::next_line() {
  if (pos_ >= lines_.size()) throw FormatError("unexpected end of text");
  std::string_view line = lines_[pos_++];
  const std::size_t indent = static_cast<std::size_t>(2 * depth_);
  if (line.size() <= indent ||
      line.substr(0, indent).find_first_not_of(' ') != std::string_view::npos ||
      line[indent] == ' ') {
    throw FormatError("bad indentation at line: '" + std::string(line) + "'");
  }
  return line.substr(indent);
}

}  // namespace edc::canon
