// WISPCam [4]: a battery-free RFID camera.
//
// A 6 mF supercapacitor charges from the reader's RF field. Once the
// capacitor holds enough for one photo, the camera captures a frame into
// NVM; the stored photo is then read out over RFID in small chunks whenever
// the field is present. Expression (2) violations between phases lose
// nothing — the photo persists in NVM (the paper's §II.B example of
// task-based transient design).
#pragma once

#include <cstdint>
#include <vector>

#include "edc/common/units.h"
#include "edc/trace/source.h"
#include "edc/trace/waveform.h"

namespace edc::taskmodel {

class WispCam {
 public:
  struct Config {
    Farads capacitance = 6e-3;
    Volts v_capture = 2.6;      ///< capture allowed above this
    Volts v_min_operate = 1.9;  ///< logic brown-out
    Amps i_capture = 9e-3;      ///< imager + MCU during capture
    Seconds capture_time = 40e-3;
    Amps i_store = 4e-3;        ///< NVM write burst
    Seconds store_time = 25e-3;
    Amps i_readout = 1.2e-3;    ///< backscatter chunk transfer
    Seconds chunk_time = 8e-3;
    int chunks_per_photo = 40;
    Amps i_idle = 2.5e-6;
    double harvest_efficiency = 0.55;
    Seconds dt = 50e-6;
  };

  explicit WispCam(const Config& config);

  struct Result {
    int photos_captured = 0;
    int photos_transferred = 0;
    std::vector<Seconds> capture_times;
    std::vector<Seconds> transfer_complete_times;
    trace::Waveform voltage;
    int interrupted_phases = 0;  ///< phases cut short by brown-out (retried)

    /// Mean capture-to-delivery latency (s); 0 if nothing delivered.
    [[nodiscard]] Seconds mean_latency() const;
  };

  /// Runs against an RF power source for `horizon` seconds.
  [[nodiscard]] Result run(const trace::PowerSource& source, Seconds horizon) const;

 private:
  Config config_;
};

}  // namespace edc::taskmodel
