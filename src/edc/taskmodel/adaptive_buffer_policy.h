// Energy-adaptive commit buffering for task-based transient operation.
//
// BurstTaskPolicy commits progress to NVM after *every* task — safe, but
// each commit costs a full snapshot write. When the harvester is strong
// the capacitor rarely droops between tasks, so most of those commits
// protect work that was never at risk. This policy sizes a commit buffer
// against an EWMA of the measured harvest rate: plentiful energy widens
// the buffer (fewer NVM commits, less write wear), scarce energy shrinks
// it back to commit-per-task so an outage can only lose one task of work.
//
// The rate estimate is observational: at each task boundary the policy
// polls V_CC (paying the ADC cost), reconstructs stored energy 1/2 C V^2,
// and attributes the change plus one task of consumption to harvest over
// the elapsed interval. Buffered-but-uncommitted tasks ride in RAM; a
// brown-out that kills RAM rolls them back to the last commit, which is
// exactly the torn/committed accounting the NVM counters expose.
#pragma once

#include "edc/checkpoint/policy_base.h"

namespace edc::taskmodel {

class AdaptiveBufferPolicy final : public checkpoint::PolicyBase {
 public:
  struct Config {
    /// Energy one task consumes (see BurstTaskPolicy::task_energy).
    Joules task_energy = 50e-6;
    /// Node capacitance used for the wake threshold and the stored-energy
    /// reconstruction. Zero = the node capacitance (filled by the spec
    /// layer).
    Farads capacitance = 100e-6;
    /// Safety margin on the task energy for the wake threshold.
    double margin = 1.3;
    /// EWMA smoothing factor for the harvest-rate estimate, in (0, 1];
    /// 1 = trust only the latest boundary-to-boundary sample.
    double ewma_alpha = 0.25;
    /// Harvest rate (watts) worth one extra buffered task: the buffer
    /// target is min_buffer + floor(ewma_rate / rate_reference), clamped
    /// to [min_buffer, max_buffer].
    Watts rate_reference = 1e-4;
    /// Commit cadence bounds (tasks per NVM commit).
    unsigned min_buffer = 1;
    unsigned max_buffer = 8;
  };

  explicit AdaptiveBufferPolicy(const Config& config);

  void attach(mcu::Mcu& mcu) override;
  void on_boot(mcu::Mcu& mcu, Seconds t) override;
  void on_comparator(mcu::Mcu& mcu, const circuit::ComparatorEvent& event) override;
  void on_boundary(mcu::Mcu& mcu, workloads::Boundary boundary, Seconds t) override;
  void on_save_complete(mcu::Mcu& mcu, Seconds t) override;
  void on_power_loss(mcu::Mcu& mcu, Seconds t) override;

  /// Between bursts the device waits for the VTASK comparator (or a
  /// brown-out) and nothing else, so quiescent spans are plannable.
  [[nodiscard]] bool wakes_only_by_comparator(mcu::McuState state) const override {
    return state == mcu::McuState::sleep || state == mcu::McuState::wait ||
           state == mcu::McuState::done;
  }

  [[nodiscard]] std::string name() const override { return "adaptive-buffer"; }

  [[nodiscard]] Volts wake_threshold() const noexcept { return v_wake_; }
  /// Current commit cadence (tasks per commit) — grows with harvest rate.
  [[nodiscard]] unsigned buffer_target() const noexcept { return buffer_target_; }
  /// Smoothed harvest-rate estimate in watts (0 until two boundaries seen).
  [[nodiscard]] Watts harvest_rate() const noexcept { return ewma_rate_; }

 private:
  void begin_running(mcu::Mcu& mcu, Seconds t);
  void observe_boundary(mcu::Mcu& mcu, Seconds t, Volts v);

  Config config_;
  Volts v_wake_ = 0.0;
  unsigned pending_ = 0;        ///< tasks finished since the last commit
  unsigned buffer_target_ = 1;  ///< commit after this many buffered tasks
  Watts ewma_rate_ = 0.0;
  bool have_sample_ = false;
  bool have_prev_ = false;
  Joules prev_stored_ = 0.0;
  Seconds prev_time_ = 0.0;
};

}  // namespace edc::taskmodel
