#include "edc/taskmodel/monjolo.h"

#include <algorithm>

#include "edc/common/check.h"

namespace edc::taskmodel {

MonjoloMeter::MonjoloMeter(const Config& config) : config_(config) {
  EDC_CHECK(config.capacitance > 0.0, "capacitance must be positive");
  EDC_CHECK(config.v_fire > config.v_empty, "fire threshold must exceed empty");
  EDC_CHECK(config.i_transmit > 0.0, "transmit current must be positive");
  EDC_CHECK(config.dt > 0.0, "dt must be positive");
  EDC_CHECK(config.harvest_efficiency > 0.0 && config.harvest_efficiency <= 1.0,
            "efficiency must be in (0,1]");
}

MonjoloMeter::Result MonjoloMeter::run(const trace::PowerSource& source,
                                       Seconds horizon) const {
  EDC_CHECK(horizon > 0.0, "horizon must be positive");
  Result result;
  // The energy one cycle drains from storage: C/2 * (v_fire^2 - v_empty^2),
  // plus what charging loses to leakage is absorbed into calibration — this
  // matches how Monjolo is calibrated empirically (fixed J per ping).
  result.energy_per_cycle =
      0.5 * config_.capacitance *
      (config_.v_fire * config_.v_fire - config_.v_empty * config_.v_empty);

  const Seconds dt = config_.dt;
  const std::size_t steps = static_cast<std::size_t>(horizon / dt);
  const std::size_t probe_stride = std::max<std::size_t>(steps / 20000, 1);

  std::vector<double> probe;
  probe.reserve(steps / probe_stride + 1);

  double v = 0.0;
  bool transmitting = false;
  for (std::size_t i = 0; i < steps; ++i) {
    const Seconds t = static_cast<double>(i) * dt;
    Amps i_in = 0.0;
    const Watts p = config_.harvest_efficiency * source.available_power(t);
    if (p > 0.0) i_in = p / std::max(v, 0.5);
    Amps i_out = config_.i_leak + (transmitting ? config_.i_transmit : 0.0);
    v = std::max(v + (i_in - i_out) / config_.capacitance * dt, 0.0);

    if (!transmitting && v >= config_.v_fire) {
      transmitting = true;
    } else if (transmitting && v <= config_.v_empty) {
      transmitting = false;
      result.pings.push_back(t);
    }
    if (i % probe_stride == 0) probe.push_back(v);
  }
  result.voltage =
      trace::Waveform(0.0, dt * static_cast<double>(probe_stride), std::move(probe));
  return result;
}

std::vector<std::pair<Seconds, Watts>> MonjoloMeter::Result::estimated_power() const {
  std::vector<std::pair<Seconds, Watts>> estimates;
  for (std::size_t i = 1; i < pings.size(); ++i) {
    const Seconds gap = pings[i] - pings[i - 1];
    if (gap > 0.0) {
      estimates.emplace_back(pings[i], energy_per_cycle / gap);
    }
  }
  return estimates;
}

Watts MonjoloMeter::Result::mean_estimate(Seconds t0, Seconds t1) const {
  // Count whole cycles completed inside the window.
  std::size_t count = 0;
  for (Seconds ping : pings) {
    if (ping >= t0 && ping <= t1) ++count;
  }
  if (count == 0 || t1 <= t0) return 0.0;
  return static_cast<double>(count) * energy_per_cycle / (t1 - t0);
}

}  // namespace edc::taskmodel
