#include "edc/taskmodel/wispcam.h"

#include <algorithm>

#include "edc/common/check.h"

namespace edc::taskmodel {

WispCam::WispCam(const Config& config) : config_(config) {
  EDC_CHECK(config.capacitance > 0.0, "capacitance must be positive");
  EDC_CHECK(config.v_capture > config.v_min_operate,
            "capture threshold must exceed the operating minimum");
  EDC_CHECK(config.chunks_per_photo >= 1, "need at least one chunk");
  EDC_CHECK(config.dt > 0.0, "dt must be positive");
}

Seconds WispCam::Result::mean_latency() const {
  if (transfer_complete_times.empty()) return 0.0;
  Seconds total = 0.0;
  for (std::size_t i = 0; i < transfer_complete_times.size(); ++i) {
    total += transfer_complete_times[i] - capture_times[i];
  }
  return total / static_cast<double>(transfer_complete_times.size());
}

WispCam::Result WispCam::run(const trace::PowerSource& source, Seconds horizon) const {
  EDC_CHECK(horizon > 0.0, "horizon must be positive");
  enum class Phase { harvest, capture, store, readout };

  Result result;
  const Seconds dt = config_.dt;
  const std::size_t steps = static_cast<std::size_t>(horizon / dt);
  const std::size_t probe_stride = std::max<std::size_t>(steps / 20000, 1);
  std::vector<double> probe;
  probe.reserve(steps / probe_stride + 1);

  double v = 0.0;
  Phase phase = Phase::harvest;
  Seconds phase_left = 0.0;
  int chunks_left = 0;
  bool photo_in_nvm = false;
  Seconds current_capture_time = 0.0;

  for (std::size_t i = 0; i < steps; ++i) {
    const Seconds t = static_cast<double>(i) * dt;

    Amps i_out = config_.i_idle;
    switch (phase) {
      case Phase::harvest: break;
      case Phase::capture: i_out += config_.i_capture; break;
      case Phase::store: i_out += config_.i_store; break;
      case Phase::readout: i_out += config_.i_readout; break;
    }

    Amps i_in = 0.0;
    const Watts p = config_.harvest_efficiency * source.available_power(t);
    if (p > 0.0) i_in = p / std::max(v, 0.5);
    v = std::max(v + (i_in - i_out) / config_.capacitance * dt, 0.0);

    // Brown-out interrupts the active phase; NVM contents survive. An
    // interrupted capture/store is retried from the phase start (the frame
    // buffer is volatile); an interrupted readout resumes chunk-by-chunk.
    if (phase != Phase::harvest && v < config_.v_min_operate) {
      if (phase == Phase::capture || phase == Phase::store) {
        photo_in_nvm = (phase == Phase::store) ? false : photo_in_nvm;
      }
      ++result.interrupted_phases;
      phase = Phase::harvest;
      continue;
    }

    switch (phase) {
      case Phase::harvest: {
        if (photo_in_nvm && p > 0.0 && v >= config_.v_min_operate + 0.2) {
          phase = Phase::readout;  // field present: stream the stored photo
          phase_left = config_.chunk_time;
        } else if (!photo_in_nvm && v >= config_.v_capture) {
          phase = Phase::capture;
          phase_left = config_.capture_time;
          current_capture_time = t;
        }
        break;
      }
      case Phase::capture: {
        phase_left -= dt;
        if (phase_left <= 0.0) {
          phase = Phase::store;
          phase_left = config_.store_time;
        }
        break;
      }
      case Phase::store: {
        phase_left -= dt;
        if (phase_left <= 0.0) {
          photo_in_nvm = true;
          ++result.photos_captured;
          result.capture_times.push_back(current_capture_time);
          chunks_left = config_.chunks_per_photo;
          phase = Phase::harvest;
        }
        break;
      }
      case Phase::readout: {
        if (p <= 0.0) {  // field vanished mid-chunk: wait for it to return
          phase = Phase::harvest;
          break;
        }
        phase_left -= dt;
        if (phase_left <= 0.0) {
          if (--chunks_left <= 0) {
            photo_in_nvm = false;
            ++result.photos_transferred;
            result.transfer_complete_times.push_back(t);
            phase = Phase::harvest;
          } else {
            phase_left = config_.chunk_time;
          }
        }
        break;
      }
    }
    if (i % probe_stride == 0) probe.push_back(v);
  }

  // Photos captured but not fully read out keep their capture timestamps;
  // align the latency vectors to completed transfers only.
  result.capture_times.resize(
      std::min(result.capture_times.size(), result.transfer_complete_times.size() +
                                                (photo_in_nvm ? 1 : 0)));
  result.voltage =
      trace::Waveform(0.0, dt * static_cast<double>(probe_stride), std::move(probe));
  return result;
}

}  // namespace edc::taskmodel
