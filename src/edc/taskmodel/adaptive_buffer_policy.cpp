#include "edc/taskmodel/adaptive_buffer_policy.h"

#include <algorithm>

#include "edc/checkpoint/thresholds.h"
#include "edc/common/check.h"

namespace edc::taskmodel {

AdaptiveBufferPolicy::AdaptiveBufferPolicy(const Config& config)
    : config_(config), buffer_target_(config.min_buffer) {
  EDC_CHECK(config.task_energy > 0.0, "task energy must be positive");
  EDC_CHECK(config.capacitance > 0.0, "capacitance must be positive");
  EDC_CHECK(config.margin >= 1.0, "margin must be at least 1");
  EDC_CHECK(config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
            "ewma alpha must be in (0, 1]");
  EDC_CHECK(config.rate_reference > 0.0, "rate reference must be positive");
  EDC_CHECK(config.min_buffer >= 1, "min buffer must be at least 1");
  EDC_CHECK(config.max_buffer >= config.min_buffer,
            "max buffer must be >= min buffer");
}

void AdaptiveBufferPolicy::attach(mcu::Mcu& mcu) {
  // Wake when the capacitor holds one (margined) task of energy above
  // v_min. Zero hysteresis: the burst-continuation poll compares against
  // v_wake_ itself, so the comparator must re-arm exactly there.
  v_wake_ = checkpoint::hibernate_threshold(config_.margin * config_.task_energy,
                                            config_.capacitance, mcu.power().v_min);
  mcu.add_comparator("VTASK", v_wake_, 0.0);
}

void AdaptiveBufferPolicy::begin_running(mcu::Mcu& mcu, Seconds t) {
  if (mcu.ram_valid()) {
    // Buffered tasks survived in RAM; keep the commit cadence counter.
    mcu.resume_execution(t);
    return;
  }
  // Restoring (or restarting) rolls back to the last commit: everything
  // buffered since is gone, so the counter restarts with it.
  pending_ = 0;
  if (mcu.nvm().has_valid_snapshot()) {
    mcu.request_restore(t);
  } else {
    mcu.start_program_fresh(t);
  }
}

void AdaptiveBufferPolicy::on_boot(mcu::Mcu& mcu, Seconds t) {
  if (mcu.vcc() >= v_wake_) {
    begin_running(mcu, t);
  } else {
    mcu.enter_wait(t);
  }
}

void AdaptiveBufferPolicy::on_comparator(mcu::Mcu& mcu,
                                         const circuit::ComparatorEvent& event) {
  if (event.name == "VTASK" && event.edge == circuit::Edge::rising) {
    const auto state = mcu.state();
    if (state == mcu::McuState::wait || state == mcu::McuState::sleep) {
      begin_running(mcu, event.time);
    }
  }
}

void AdaptiveBufferPolicy::observe_boundary(mcu::Mcu& mcu, Seconds t, Volts v) {
  const Joules stored = 0.5 * config_.capacitance * v * v;
  if (have_prev_ && t > prev_time_) {
    // Whatever the capacitor gained plus the task we just ran came from
    // the harvester over this boundary-to-boundary interval.
    const Watts sample = std::max(
        0.0, (stored - prev_stored_ + config_.task_energy) / (t - prev_time_));
    ewma_rate_ = have_sample_
                     ? config_.ewma_alpha * sample +
                           (1.0 - config_.ewma_alpha) * ewma_rate_
                     : sample;
    have_sample_ = true;
    const double extra = ewma_rate_ / config_.rate_reference;
    const double capped = std::min(
        extra, static_cast<double>(config_.max_buffer - config_.min_buffer));
    buffer_target_ = config_.min_buffer + static_cast<unsigned>(capped);
  }
  have_prev_ = true;
  prev_stored_ = stored;
  prev_time_ = t;
  (void)mcu;
}

void AdaptiveBufferPolicy::on_boundary(mcu::Mcu& mcu, workloads::Boundary boundary,
                                       Seconds t) {
  if (boundary != workloads::Boundary::function) return;
  // Task finished: pay one ADC poll to read the gauge, fold the sample
  // into the rate estimate, then decide whether this boundary commits.
  const Volts v = mcu.poll_vcc();
  observe_boundary(mcu, t, v);
  ++pending_;
  if (pending_ >= buffer_target_ || v < v_wake_) {
    // Cadence reached — or the gauge says the burst is about to end, in
    // which case the buffer must reach NVM before the device sleeps.
    mcu.request_save(t);
  }
  // Otherwise keep running: the task's progress rides in RAM until the
  // buffer fills.
}

void AdaptiveBufferPolicy::on_save_complete(mcu::Mcu& mcu, Seconds t) {
  pending_ = 0;
  // Dynamic burst scaling, as in BurstTaskPolicy: keep executing while the
  // gauge still holds one task of energy; sleep otherwise. The sleep
  // decision must use the same level the comparator re-arms at.
  const Volts v = mcu.poll_vcc();
  if (v >= v_wake_) {
    mcu.resume_execution(t);
    return;
  }
  mcu.enter_sleep(t);
}

void AdaptiveBufferPolicy::on_power_loss(mcu::Mcu&, Seconds) {
  // The pre-outage gauge sample is stale by the time the node reboots;
  // restart the rate window rather than attribute the outage to harvest.
  have_prev_ = false;
}

}  // namespace edc::taskmodel
