#include "edc/taskmodel/burst_policy.h"

#include "edc/checkpoint/thresholds.h"
#include "edc/common/check.h"

namespace edc::taskmodel {

BurstTaskPolicy::BurstTaskPolicy(const Config& config) : config_(config) {
  EDC_CHECK(config.task_energy > 0.0, "task energy must be positive");
  EDC_CHECK(config.capacitance > 0.0, "capacitance must be positive");
  EDC_CHECK(config.margin >= 1.0, "margin must be at least 1");
}

Joules BurstTaskPolicy::task_energy(const mcu::Mcu& mcu, Cycles cycles,
                                    Volts v_nominal) {
  const auto& p = mcu.power();
  const Seconds t_active = static_cast<double>(cycles) / mcu.frequency();
  const Joules compute =
      t_active * p.active_current(mcu.frequency(), mcu.memory_mode()) * v_nominal;
  const Joules commit =
      p.save_energy(mcu.snapshot_image_bytes(), mcu.frequency(), v_nominal);
  return compute + commit;
}

void BurstTaskPolicy::attach(mcu::Mcu& mcu) {
  // Wake when the capacitor holds one (margined) task of energy above v_min.
  v_wake_ = checkpoint::hibernate_threshold(config_.margin * config_.task_energy,
                                            config_.capacitance, mcu.power().v_min);
  // Zero hysteresis: the burst-continuation poll compares against v_wake_
  // itself, so the comparator must re-arm exactly there (see interrupt
  // policy for the stranding hazard otherwise).
  mcu.add_comparator("VTASK", v_wake_, 0.0);
}

void BurstTaskPolicy::begin_running(mcu::Mcu& mcu, Seconds t) {
  if (mcu.ram_valid()) {
    mcu.resume_execution(t);
  } else if (mcu.nvm().has_valid_snapshot()) {
    mcu.request_restore(t);
  } else {
    mcu.start_program_fresh(t);
  }
}

void BurstTaskPolicy::on_boot(mcu::Mcu& mcu, Seconds t) {
  if (mcu.vcc() >= v_wake_) {
    begin_running(mcu, t);
  } else {
    mcu.enter_wait(t);
  }
}

void BurstTaskPolicy::on_comparator(mcu::Mcu& mcu,
                                    const circuit::ComparatorEvent& event) {
  if (event.name == "VTASK" && event.edge == circuit::Edge::rising) {
    const auto state = mcu.state();
    if (state == mcu::McuState::wait || state == mcu::McuState::sleep) {
      begin_running(mcu, event.time);
    }
  }
}

void BurstTaskPolicy::on_boundary(mcu::Mcu& mcu, workloads::Boundary boundary,
                                  Seconds t) {
  if (boundary != workloads::Boundary::function) return;
  // Task finished: commit progress. Whether the burst continues is decided
  // when the save completes (dynamic scaling re-checks the gauge).
  mcu.request_save(t);
}

void BurstTaskPolicy::on_save_complete(mcu::Mcu& mcu, Seconds t) {
  // Dynamic burst scaling: keep executing tasks while the gauge still holds
  // one task of energy; sleep (and wait for the comparator) otherwise. The
  // sleep decision must use the same level the comparator re-arms at, or the
  // policy could strand itself asleep above the wake threshold.
  const Volts v = mcu.poll_vcc();
  if (v >= v_wake_) {
    mcu.resume_execution(t);
    return;
  }
  mcu.enter_sleep(t);
}

}  // namespace edc::taskmodel
