// Task-based transient operation with dynamic energy-burst scaling
// (Gomez et al., DATE'16 [5]).
//
// The system sleeps until the storage capacitor holds enough energy for at
// least one atomic task, then executes task(s) to completion. "Dynamic
// burst scaling" executes as many tasks per wake-up as the stored energy
// allows: after each task the policy re-checks V_CC and continues while
// another full task still fits. Progress (e.g. the round counter) commits
// to NVM at each task boundary, so expression (2) violations between bursts
// lose nothing.
//
// This policy sits on the *right* of the taxonomy's adaptation arc: it
// buffers "enough energy for one task", unlike hibernus' continuous
// adaptation which needs only enough for one snapshot.
#pragma once

#include "edc/checkpoint/policy_base.h"

namespace edc::taskmodel {

class BurstTaskPolicy final : public checkpoint::PolicyBase {
 public:
  struct Config {
    /// Energy one task consumes (compute from the workload; see
    /// task_energy() helper).
    Joules task_energy = 50e-6;
    /// Node capacitance the wake threshold is derived from.
    Farads capacitance = 100e-6;
    /// Safety margin on the task energy.
    double margin = 1.3;
  };

  explicit BurstTaskPolicy(const Config& config);

  void attach(mcu::Mcu& mcu) override;
  void on_boot(mcu::Mcu& mcu, Seconds t) override;
  void on_comparator(mcu::Mcu& mcu, const circuit::ComparatorEvent& event) override;
  void on_boundary(mcu::Mcu& mcu, workloads::Boundary boundary, Seconds t) override;
  void on_save_complete(mcu::Mcu& mcu, Seconds t) override;

  /// Between bursts the device waits for the VTASK comparator (or a
  /// brown-out) and nothing else, so quiescent spans are plannable.
  [[nodiscard]] bool wakes_only_by_comparator(mcu::McuState state) const override {
    return state == mcu::McuState::sleep || state == mcu::McuState::wait ||
           state == mcu::McuState::done;
  }

  [[nodiscard]] std::string name() const override { return "burst"; }

  [[nodiscard]] Volts wake_threshold() const noexcept { return v_wake_; }

  /// Energy of one task = active energy of `cycles` at (f, v) plus one
  /// snapshot commit of the current image.
  static Joules task_energy(const mcu::Mcu& mcu, Cycles cycles, Volts v_nominal);

 private:
  void begin_running(mcu::Mcu& mcu, Seconds t);

  Config config_;
  Volts v_wake_ = 0.0;
};

}  // namespace edc::taskmodel
