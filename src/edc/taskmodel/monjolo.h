// Monjolo [6]: a charge-and-fire energy-harvesting energy meter.
//
// A current-clamp harvester charges a small capacitor; every time the
// capacitor reaches the fire threshold the node wakes, transmits one packet
// (emptying the capacitor), and goes dark. The *receiver* estimates the
// harvested power — and hence the primary load's power — purely from the
// ping arrival rate:
//
//   P_est = E_cycle / dt_between_pings
//
// where E_cycle is the (calibrated) energy per charge-fire cycle.
#pragma once

#include <vector>

#include "edc/common/units.h"
#include "edc/trace/source.h"
#include "edc/trace/waveform.h"

namespace edc::taskmodel {

class MonjoloMeter {
 public:
  struct Config {
    Farads capacitance = 500e-6;
    Volts v_fire = 2.8;        ///< wake + transmit at this voltage
    Volts v_empty = 1.9;       ///< transmission ends when the cap sags here
    Amps i_transmit = 18e-3;   ///< radio + MCU burst current
    Amps i_leak = 1.0e-6;      ///< quiescent drain while charging
    double harvest_efficiency = 0.70;
    Seconds dt = 20e-6;        ///< integration step
  };

  explicit MonjoloMeter(const Config& config);

  struct Result {
    std::vector<Seconds> pings;     ///< transmission completion times
    Joules energy_per_cycle = 0.0;  ///< calibrated E_cycle
    trace::Waveform voltage;        ///< capacitor voltage (probe)

    /// Receiver-side power estimate between consecutive pings.
    [[nodiscard]] std::vector<std::pair<Seconds, Watts>> estimated_power() const;

    /// Mean estimated power over [t0, t1].
    [[nodiscard]] Watts mean_estimate(Seconds t0, Seconds t1) const;
  };

  /// Runs the meter against a harvested-power source for `horizon` seconds.
  [[nodiscard]] Result run(const trace::PowerSource& source, Seconds horizon) const;

 private:
  Config config_;
};

}  // namespace edc::taskmodel
