#include "edc/sweep/shard.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "edc/common/canon.h"
#include "edc/common/check.h"

namespace edc::sweep {

std::vector<std::size_t> Shard::owned_points(std::size_t grid_size) const {
  std::vector<std::size_t> points;
  points.reserve(owned_count(grid_size));
  for (std::size_t i = index; i < grid_size; i += count) points.push_back(i);
  return points;
}

Shard Shard::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    throw std::invalid_argument("shard must be 'k/N', got '" + text + "'");
  }
  Shard shard;
  try {
    shard.index = static_cast<std::size_t>(
        canon::parse_u64(std::string_view(text).substr(0, slash)));
    shard.count = static_cast<std::size_t>(
        canon::parse_u64(std::string_view(text).substr(slash + 1)));
  } catch (const canon::FormatError&) {
    throw std::invalid_argument("shard must be 'k/N', got '" + text + "'");
  }
  if (shard.count == 0) {
    throw std::invalid_argument("shard count must be >= 1, got '" + text + "'");
  }
  if (shard.index >= shard.count) {
    throw std::invalid_argument("shard index must be < count, got '" + text + "'");
  }
  return shard;
}

std::string Shard::to_string() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

ShardAssignment ShardAssignment::striding(std::size_t grid_size, std::size_t count) {
  EDC_CHECK(count >= 1, "shard count must be >= 1");
  ShardAssignment assignment;
  assignment.owned.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    assignment.owned[k] = Shard{k, count}.owned_points(grid_size);
  }
  return assignment;
}

ShardAssignment ShardAssignment::balanced(const std::vector<double>& micros,
                                          std::size_t count) {
  EDC_CHECK(count >= 1, "shard count must be >= 1");
  const bool timings_usable =
      !micros.empty() &&
      std::all_of(micros.begin(), micros.end(), [](double c) { return c > 0.0; });
  if (!timings_usable) return striding(micros.size(), count);

  // Descending cost, stable in point index so equal costs keep grid order.
  std::vector<std::size_t> order(micros.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&micros](std::size_t a, std::size_t b) {
    return micros[a] > micros[b];
  });

  ShardAssignment assignment;
  assignment.owned.resize(count);
  std::vector<double> load(count, 0.0);
  for (const std::size_t point : order) {
    // Least-loaded shard, lowest index on ties: a linear scan keeps the
    // tie-break deterministic (a heap would reorder equal loads).
    std::size_t target = 0;
    for (std::size_t k = 1; k < count; ++k) {
      if (load[k] < load[target]) target = k;
    }
    assignment.owned[target].push_back(point);
    load[target] += micros[point];
  }
  for (auto& points : assignment.owned) std::sort(points.begin(), points.end());
  return assignment;
}

double ShardAssignment::makespan(const std::vector<double>& micros) const {
  double worst = 0.0;
  for (const auto& points : owned) {
    double total = 0.0;
    for (const std::size_t point : points) total += micros.at(point);
    worst = std::max(worst, total);
  }
  return worst;
}

}  // namespace edc::sweep
