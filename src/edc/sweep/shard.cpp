#include "edc/sweep/shard.h"

#include <stdexcept>

#include "edc/common/canon.h"

namespace edc::sweep {

std::vector<std::size_t> Shard::owned_points(std::size_t grid_size) const {
  std::vector<std::size_t> points;
  points.reserve(owned_count(grid_size));
  for (std::size_t i = index; i < grid_size; i += count) points.push_back(i);
  return points;
}

Shard Shard::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    throw std::invalid_argument("shard must be 'k/N', got '" + text + "'");
  }
  Shard shard;
  try {
    shard.index = static_cast<std::size_t>(
        canon::parse_u64(std::string_view(text).substr(0, slash)));
    shard.count = static_cast<std::size_t>(
        canon::parse_u64(std::string_view(text).substr(slash + 1)));
  } catch (const canon::FormatError&) {
    throw std::invalid_argument("shard must be 'k/N', got '" + text + "'");
  }
  if (shard.count == 0) {
    throw std::invalid_argument("shard count must be >= 1, got '" + text + "'");
  }
  if (shard.index >= shard.count) {
    throw std::invalid_argument("shard index must be < count, got '" + text + "'");
  }
  return shard;
}

std::string Shard::to_string() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

}  // namespace edc::sweep
