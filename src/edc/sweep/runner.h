// Parallel sweep execution with deterministic result ordering.
//
// The Runner fans the independent simulations of a Grid out over a
// std::thread pool. Every grid point instantiates its own spec (fresh
// sources, node, MCU, policy — nothing shared between points), so points
// are embarrassingly parallel; results are written into a pre-sized vector
// at the point's index, so the returned rows are in grid order regardless
// of how the OS scheduled the workers. A parallel run is bit-identical to
// a serial run of the same grid (tested in tests/sweep_test.cpp).
//
//   sweep::Runner runner;                       // hardware_concurrency threads
//   const auto rows = runner.run(grid);         // rows[i] == grid.point(i)
//
// Two scaling hooks compose with the pool (tests/sweep_cache_test.cpp,
// tests/sweep_shard_test.cpp):
//
//  * options.cache points at a sweep::Cache: run()/run_shard() then load
//    previously simulated points from disk instead of re-simulating them
//    (bit-identical rows), and store fresh points. Specs that carry opaque
//    factory callbacks are non-cacheable and always simulate.
//  * run_shard(grid, shard) simulates only the points a Shard owns
//    (global index i with i % N == k), for splitting one grid across
//    processes or machines; per-shard CSVs merge back into exact grid
//    order (see sweep/shard.h).
//
// For per-point data beyond SimResult (policy internals, NVM counters),
// map() passes the still-live system to a caller-supplied extractor (the
// cache is bypassed — the extractor needs the live system):
//
//   auto torn = runner.map<std::uint64_t>(
//       grid, [](const sweep::Point&, core::EnergyDrivenSystem& system,
//                const sim::SimResult&) {
//         return system.mcu().nvm().torn_writes();
//       });
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "edc/core/system.h"
#include "edc/sim/simulator.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/shard.h"

namespace edc::sweep {

class Cache;
class FaultInjector;

/// Per-row origin codes (the probe-count accounting solver-guided searches
/// rely on, see sweep/search.h): was the row computed by a fresh
/// simulation on *this* run, or replayed warm from the cache? Unlike
/// provenance ('s'/'b', which survives cache round trips), origin is a
/// property of the current run — a warm rerun of a cached grid is all
/// kOriginWarm even though every row's provenance still names the path
/// that first produced it.
inline constexpr char kOriginFresh = 'f';  ///< simulated on this run
inline constexpr char kOriginWarm = 'w';   ///< loaded from the cache

/// Per-row execution telemetry for one run()/run_shard()/run_assignment()
/// call. All three columns are sized to the returned rows and indexed the
/// same way:
///
///  * micros[i]      — the microseconds row i's simulation took on this
///    run, or — for a cache hit — the cost recorded when the point was
///    first simulated (what ShardAssignment::balanced turns into an LPT
///    partition).
///  * provenance[i]  — the execution-path code ('s' scalar / 'b' batch,
///    see sweep/batch.h) telling timing consumers how to interpret the
///    matching micros entry: per-point wall time, or a batch chunk's cost
///    amortized over its lanes. Cache hits replay the provenance recorded
///    when the point was first simulated.
///  * origin[i]      — kOriginFresh when the row was simulated on this
///    run, kOriginWarm when it was replayed from the cache: the exact
///    cold-point accounting sweep::Search gates its probe budgets on.
struct RunReport {
  std::vector<double> micros;
  std::vector<char> provenance;
  std::vector<char> origin;

  /// Rows replayed warm from the cache on this run.
  [[nodiscard]] std::size_t warm_count() const noexcept {
    std::size_t n = 0;
    for (const char code : origin) n += (code == kOriginWarm) ? 1 : 0;
    return n;
  }
  /// Rows simulated fresh on this run.
  [[nodiscard]] std::size_t fresh_count() const noexcept {
    return origin.size() - warm_count();
  }
};

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (at least 1).
  /// The pool never exceeds the number of grid points.
  int threads = 0;
  /// Optional on-disk memoiser for run()/run_shard() (see sweep/cache.h).
  /// Not owned; must outlive the Runner. map() ignores it.
  Cache* cache = nullptr;
  /// Batched execution strategy (see sweep/batch.h): group points whose
  /// source/front-end/lattice axes agree and step them in lockstep through
  /// the SoA kernel, up to `batch_lanes` lanes per kernel. Rows are
  /// bit-identical to the scalar path; per-point wall times become
  /// amortized lane costs (provenance 'b'). map() ignores it (extractors
  /// need the scalar per-point lifecycle).
  bool batch = false;
  int batch_lanes = 16;
  /// Optional chaos source (see sweep/fault_injector.h). Not owned; must
  /// outlive the Runner. Applied on the scalar simulation path only: the
  /// injector's before_simulate() seam runs before each point's
  /// simulation (keyed by spec hash), injecting latency for scheduled
  /// slow points and throwing WorkerKilledError for scheduled kills —
  /// which the Runner surfaces like any worker exception (rethrown after
  /// the pool drains). Fault-tolerant callers (the serve engine) catch
  /// and retry; the cache's own I/O faults are wired separately via
  /// Cache::set_fault_injector. Non-cacheable specs have no stable key
  /// and are never fault-injected.
  const FaultInjector* fault_injector = nullptr;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {}) : options_(options) {}

  /// Simulates every grid point (to the spec's sim.t_end horizon) and
  /// returns the SimResult rows in point order. With options.cache set,
  /// warm points are loaded instead of simulated.
  ///
  /// When `report` is non-null it receives the per-row execution telemetry
  /// — micros, provenance and origin columns sized to the returned rows
  /// (see RunReport above).
  [[nodiscard]] std::vector<sim::SimResult> run(
      const Grid& grid, RunReport* report = nullptr) const;

  /// As run(), but only for the points `shard` owns; rows (and report
  /// columns) are returned in ascending global-point order (matching
  /// Shard::owned_points). The k-of-N results of a full partition merge
  /// back into the run() rows.
  [[nodiscard]] std::vector<sim::SimResult> run_shard(
      const Grid& grid, const Shard& shard, RunReport* report = nullptr) const;

  /// The cost-weighted re-run path: as run_shard(), but for slice
  /// `shard_index` of an explicit ShardAssignment (e.g. the LPT partition
  /// ShardAssignment::balanced builds from a previous run's report.micros
  /// — a warm cached grid replays them without simulating). Rows are
  /// returned in the slice's ascending global-point order; the slices of a
  /// full assignment cover the run() rows exactly once.
  [[nodiscard]] std::vector<sim::SimResult> run_assignment(
      const Grid& grid, const ShardAssignment& assignment, std::size_t shard_index,
      RunReport* report = nullptr) const;

  /// As run(), but maps each completed simulation through `fn` inside the
  /// worker thread, while the wired system is still alive. `fn` must be
  /// safe to call concurrently from multiple threads and `R` must be
  /// default-constructible. Rows are returned in point order.
  template <typename R>
  [[nodiscard]] std::vector<R> map(
      const Grid& grid,
      const std::function<R(const Point& point, core::EnergyDrivenSystem& system,
                            const sim::SimResult& result)>& fn) const {
    // std::vector<bool> packs elements, so concurrent workers writing
    // adjacent rows would race on shared words; return char/int instead.
    static_assert(!std::is_same_v<R, bool>,
                  "map<bool> would race on std::vector<bool>'s packed storage");
    std::vector<R> rows(grid.size());
    for_each_point(grid, [&rows, &fn](const Point& point) {
      auto system = spec::instantiate(point.spec);
      const sim::SimResult result = system.run();
      rows[point.index] = fn(point, system, result);
    });
    return rows;
  }

  /// Low-level fan-out: executes `body(grid.point(i))` for every i across
  /// the pool. The first exception thrown by any worker is rethrown on the
  /// calling thread after the pool drains (remaining points are skipped).
  void for_each_point(const Grid& grid,
                      const std::function<void(const Point&)>& body) const;

  /// As for_each_point, restricted to the points `shard` owns.
  void for_each_point(const Grid& grid, const Shard& shard,
                      const std::function<void(const Point&)>& body) const;

  /// As for_each_point, over an explicit list of global point indices
  /// (each must be < grid.size()).
  void for_each_point(const Grid& grid, const std::vector<std::size_t>& points,
                      const std::function<void(const Point&)>& body) const;

  /// The pool size a grid of `point_count` points would run with.
  [[nodiscard]] int thread_count(std::size_t point_count) const noexcept;

 private:
  /// Simulates one point, consulting options_.cache when set. `micros`
  /// receives the point's wall-time cost, `provenance` its execution path
  /// and `origin` whether it was simulated fresh or loaded warm (see
  /// run()).
  [[nodiscard]] sim::SimResult simulate_point(const Point& point, double& micros,
                                              char& provenance, char& origin) const;

  /// simulate_point wrapped as the batch executor's scalar fallback
  /// (sweep::ScalarPointFn; spelled out here to avoid a header cycle with
  /// sweep/batch.h).
  [[nodiscard]] std::function<sim::SimResult(const Point&, double&, char&, char&)>
  scalar_point_fn() const;

  /// The shared thread-pool driver: executes body(grid.point(
  /// global_index(p))) for p in [0, count) across the pool; first worker
  /// exception rethrown on the calling thread after the pool drains.
  template <typename IndexFn>
  void pooled_for_each(const Grid& grid, std::size_t count,
                       const IndexFn& global_index,
                       const std::function<void(const Point&)>& body) const;

  RunnerOptions options_;
};

}  // namespace edc::sweep
