#include "edc/sweep/cache.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>
#include <utility>

#include "edc/sim/result_io.h"
#include "edc/spec/serialize.h"
#include "edc/sweep/fault_injector.h"

namespace edc::sweep {

namespace {

// v2: a `micros` wall-time line between the magic and the blocks (PR 3).
// v3: a `provenance` line ('s' scalar / 'b' batch) after the wall time
//     (PR 6). v2 entries still decode — they all predate the batch path,
//     so their provenance is 's' by construction.
constexpr char kEntryMagic[] = "edc.CacheEntry v3";
constexpr char kEntryMagicV2[] = "edc.CacheEntry v2";

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// Entry format: metadata lines plus two length-prefixed raw blocks, so
/// neither the key nor the result text needs escaping:
///
///   edc.CacheEntry v3\n
///   micros <wall time of the original simulation, canonical double>\n
///   provenance <s|b>\n
///   spec_bytes <N>\n
///   <N raw bytes of canonical spec text>
///   result_bytes <M>\n
///   <M raw bytes of canonical result text>
std::string encode_entry(const std::string& key_text, const std::string& result_text,
                         double micros, char provenance) {
  std::string out;
  out.reserve(key_text.size() + result_text.size() + 96);
  out += kEntryMagic;
  out += '\n';
  out += "micros " + canon::double_text(micros) + '\n';
  out += "provenance ";
  out += provenance;
  out += '\n';
  out += "spec_bytes " + std::to_string(key_text.size()) + '\n';
  out += key_text;
  out += "result_bytes " + std::to_string(result_text.size()) + '\n';
  out += result_text;
  return out;
}

struct DecodedEntry {
  std::string spec_text;
  std::string result_text;
  double micros = 0.0;
  char provenance = 's';
};

/// Splits an entry back into its parts; nullopt on any corruption (bad
/// magic, malformed wall time, truncated blocks, trailing bytes).
std::optional<DecodedEntry> decode_entry(const std::string& bytes) {
  std::size_t pos = 0;
  const auto read_line = [&]() -> std::optional<std::string> {
    const std::size_t end = bytes.find('\n', pos);
    if (end == std::string::npos) return std::nullopt;
    std::string line = bytes.substr(pos, end - pos);
    pos = end + 1;
    return line;
  };
  const auto read_block = [&](const char* prefix) -> std::optional<std::string> {
    const auto header = read_line();
    if (!header || header->rfind(prefix, 0) != 0) return std::nullopt;
    std::size_t length = 0;
    try {
      length = static_cast<std::size_t>(
          canon::parse_u64(std::string_view(*header).substr(std::string(prefix).size())));
    } catch (const canon::FormatError&) {
      return std::nullopt;
    }
    if (pos + length > bytes.size()) return std::nullopt;
    std::string block = bytes.substr(pos, length);
    pos += length;
    return block;
  };

  const auto magic = read_line();
  if (!magic || (*magic != kEntryMagic && *magic != kEntryMagicV2)) {
    return std::nullopt;
  }
  const auto micros_line = read_line();
  if (!micros_line || micros_line->rfind("micros ", 0) != 0) return std::nullopt;
  DecodedEntry entry;
  try {
    entry.micros = canon::parse_double(std::string_view(*micros_line).substr(7));
  } catch (const canon::FormatError&) {
    return std::nullopt;
  }
  if (*magic == kEntryMagic) {
    const auto provenance_line = read_line();
    if (!provenance_line || provenance_line->size() != 12 ||
        provenance_line->rfind("provenance ", 0) != 0) {
      return std::nullopt;
    }
    entry.provenance = (*provenance_line)[11];
    if (entry.provenance != 's' && entry.provenance != 'b') return std::nullopt;
  }
  auto spec_text = read_block("spec_bytes ");
  if (!spec_text) return std::nullopt;
  auto result_text = read_block("result_bytes ");
  if (!result_text) return std::nullopt;
  if (pos != bytes.size()) return std::nullopt;
  entry.spec_text = std::move(*spec_text);
  entry.result_text = std::move(*result_text);
  return entry;
}

}  // namespace

Cache::Cache(std::filesystem::path directory) : dir_(std::move(directory)) {}

std::filesystem::path Cache::versioned_directory() const {
  return dir_ / ("v" + std::to_string(spec::kSpecFormatVersion) + "-" +
                 std::to_string(sim::kResultFormatVersion));
}

std::filesystem::path Cache::entry_path(const std::string& key_text) const {
  const std::string hex = hex16(spec::fnv1a64(key_text));
  return versioned_directory() / hex.substr(0, 2) / (hex + ".edcres");
}

bool Cache::quarantine_entry(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::rename(path, path.string() + ".bad", ec);
  return !ec;
}

std::optional<CachedPoint> Cache::load(const std::string& key_text) const {
  const std::filesystem::path path = entry_path(key_text);
  const std::uint64_t key_hash = spec::fnv1a64(key_text);
  if (fault_injector_ != nullptr && fault_injector_->fail_read(key_hash)) {
    // An injected transient I/O error: the entry is unreadable this time
    // (not corrupt — nothing to quarantine), so degrade to a miss.
    ++misses_;
    return std::nullopt;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++misses_;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    ++misses_;
    return std::nullopt;
  }
  std::string bytes = buffer.str();
  if (fault_injector_ != nullptr && fault_injector_->truncate_read(key_hash)) {
    // An injected short read: the decoder must reject the prefix and the
    // quarantine path below must fire exactly as for real corruption.
    bytes.resize(bytes.size() / 2);
  }

  const auto quarantine_corrupt = [this, &path] {
    if (quarantine_entry(path)) ++quarantined_;
    ++misses_;
  };

  const auto entry = decode_entry(bytes);
  if (!entry) {
    // Bytes exist but don't decode: a torn or bit-rotted entry. Move it
    // aside so it stops wasting a read per lookup and can't be mistaken
    // for a healthy entry by pruning; the caller simulates.
    quarantine_corrupt();
    return std::nullopt;
  }
  if (entry->spec_text != key_text) {
    // A well-formed entry for a *different* spec: a 64-bit hash collision,
    // not corruption. The stored row is not ours — miss, but leave the
    // entry alone (it is somebody's valid result).
    ++misses_;
    return std::nullopt;
  }
  try {
    CachedPoint point;
    point.result = sim::parse_result(entry->result_text);
    point.micros = entry->micros;
    point.provenance = entry->provenance;
    ++hits_;
    // Refresh recency so LRU pruning ranks this entry as just-used.
    std::error_code ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
    return point;
  } catch (const canon::FormatError&) {
    quarantine_corrupt();
    return std::nullopt;
  }
}

std::string Cache::fsck_entry(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "unreadable";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return "read error";

  const auto entry = decode_entry(buffer.str());
  if (!entry) return "undecodable (bad magic, truncated block, or trailing bytes)";
  const std::string expected = hex16(spec::fnv1a64(entry->spec_text)) + ".edcres";
  if (path.filename().string() != expected) {
    return "filename does not match the embedded key text (expected " + expected +
           ")";
  }
  try {
    (void)sim::parse_result(entry->result_text);
  } catch (const canon::FormatError& error) {
    return std::string("stored result does not parse: ") + error.what();
  }
  if (!(entry->micros >= 0.0)) return "negative or NaN wall time";
  return {};
}

void Cache::store(const std::string& key_text, const sim::SimResult& result,
                  double micros, char provenance) const {
  const std::filesystem::path path = entry_path(key_text);
  const std::uint64_t key_hash = spec::fnv1a64(key_text);
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  if (ec) return;  // unwritable cache never fails the sweep

  // Unique temp name per writer (pid + thread, so shard *processes*
  // sharing one cache directory cannot interleave into the same file);
  // rename() is atomic within the directory, so readers only ever see
  // complete entries.
  const std::size_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::filesystem::path tmp =
      path.parent_path() /
      (path.filename().string() + ".tmp" +
       std::to_string(static_cast<long long>(::getpid())) + "-" + hex16(tid));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    const std::string entry =
        encode_entry(key_text, sim::serialize_result(result), micros, provenance);
    if (fault_injector_ != nullptr &&
        fault_injector_->crash_mid_write(key_hash)) {
      // Fork-based crash tests: die with the tmp file half-written. The
      // entry path must never become visible (rename never ran).
      out.write(entry.data(), static_cast<std::streamsize>(entry.size() / 2));
      out.flush();
      ::_exit(9);
    }
    out.write(entry.data(), static_cast<std::streamsize>(entry.size()));
    const bool injected_write_error =
        fault_injector_ != nullptr && fault_injector_->fail_write(key_hash);
    if (!out.good() || injected_write_error) {
      // A failed (or injected-failed, e.g. disk-full) write never leaves
      // debris: drop the tmp file and degrade to "not cached".
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  if (fault_injector_ != nullptr &&
      fault_injector_->crash_before_rename(key_hash)) {
    ::_exit(9);
  }
  if (fault_injector_ != nullptr && fault_injector_->fail_rename(key_hash)) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  ++stores_;
}

CacheStats Cache::stats() const noexcept {
  CacheStats stats;
  stats.hits = hits_.load();
  stats.misses = misses_.load();
  stats.stores = stores_.load();
  stats.non_cacheable = non_cacheable_.load();
  stats.quarantined = quarantined_.load();
  return stats;
}

void Cache::reset_stats() const noexcept {
  hits_.store(0);
  misses_.store(0);
  stores_.store(0);
  non_cacheable_.store(0);
  quarantined_.store(0);
}

}  // namespace edc::sweep
