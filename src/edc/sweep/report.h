// Sweep result reporting: grid rows into the existing sim::Table / CSV
// machinery.
//
// Every row carries the grid point's axis labels followed by the standard
// completion/energy metrics of its SimResult, in grid order.
#pragma once

#include <iosfwd>
#include <vector>

#include "edc/sim/simulator.h"
#include "edc/sim/table.h"
#include "edc/sweep/grid.h"

namespace edc::sweep {

/// Axis names followed by the standard metric column names.
[[nodiscard]] std::vector<std::string> summary_header(const Grid& grid);

/// One table row: the point's axis labels + formatted metrics.
[[nodiscard]] std::vector<std::string> summary_row(const Point& point,
                                                   const sim::SimResult& result);

/// An aligned text table of the whole sweep (`results` in grid order, as
/// returned by Runner::run).
[[nodiscard]] sim::Table summary_table(const Grid& grid,
                                       const std::vector<sim::SimResult>& results);

/// CSV export of the same rows (numeric metrics unformatted; labels quoted
/// when they contain separators).
void write_csv(std::ostream& out, const Grid& grid,
               const std::vector<sim::SimResult>& results);

}  // namespace edc::sweep
