// Sweep result reporting: grid rows into the existing sim::Table / CSV
// machinery.
//
// Every row carries the grid point's axis labels followed by the standard
// completion/energy metrics of its SimResult, in grid order.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "edc/sim/simulator.h"
#include "edc/sim/table.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/shard.h"

namespace edc::sweep {

/// Axis names followed by the standard metric column names.
[[nodiscard]] std::vector<std::string> summary_header(const Grid& grid);

/// One table row: the point's axis labels + formatted metrics.
[[nodiscard]] std::vector<std::string> summary_row(const Point& point,
                                                   const sim::SimResult& result);

/// An aligned text table of the whole sweep (`results` in grid order, as
/// returned by Runner::run).
[[nodiscard]] sim::Table summary_table(const Grid& grid,
                                       const std::vector<sim::SimResult>& results);

/// CSV export of the same rows (numeric metrics unformatted; labels quoted
/// when they contain separators). When `micros` is non-null (one wall-time
/// entry per row, as filled in by Runner::run) a trailing `micros` column
/// records each point's simulation cost — the input to cost-weighted shard
/// scheduling. When `provenance` is additionally non-null (one 's'/'b'
/// code per row, see sweep/batch.h) a trailing `provenance` column records
/// which execution path produced each cost, so timing consumers can refuse
/// to mix per-point scalar wall times with amortized batch lane costs.
/// The shard CSV format deliberately omits both so merged shard output
/// stays byte-comparable with a serial run.
void write_csv(std::ostream& out, const Grid& grid,
               const std::vector<sim::SimResult>& results,
               const std::vector<double>* micros = nullptr,
               const std::vector<char>* provenance = nullptr);

/// Per-shard CSV export: `results` holds the rows of the shard's owned
/// points in ascending global-index order (as returned by
/// Runner::run_shard). The file carries the shard metadata, the unsharded
/// header, and each row prefixed with its global index, so shards can be
/// merged back into exact grid order:
///
///   # edc-sweep-shard v1 shard <k>/<N> grid <size>
///   # header <unsharded CSV header line>
///   <global index>,<unsharded CSV row>
void write_shard_csv(std::ostream& out, const Grid& grid, const Shard& shard,
                     const std::vector<sim::SimResult>& results);

/// Per-shard CSV export for slice `shard_index` of an explicit
/// ShardAssignment (the cost-weighted LPT partitions of
/// ShardAssignment::balanced): identical layout to write_shard_csv but
/// tagged `v2`, whose ownership is carried entirely by the per-row global
/// indices instead of the striding rule — merge_shard_csvs accepts both
/// and still validates coverage and duplicates strictly. `results` holds
/// the slice's rows in its ascending global-index order (as returned by
/// Runner::run_assignment).
void write_assignment_shard_csv(std::ostream& out, const Grid& grid,
                                const ShardAssignment& assignment,
                                std::size_t shard_index,
                                const std::vector<sim::SimResult>& results);

/// Reassembles the shard CSV texts of a complete k/N partition into the
/// byte stream write_csv would have produced for the unsharded grid.
/// Throws std::invalid_argument when the shards disagree on grid size,
/// shard count or header, duplicate a point, or leave a point uncovered.
/// Striding (v1) shards additionally have their index-ownership rule
/// checked; assignment (v2) shards own whatever their rows name.
void merge_shard_csvs(const std::vector<std::string>& shard_csvs, std::ostream& out);

}  // namespace edc::sweep
