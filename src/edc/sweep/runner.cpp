#include "edc/sweep/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "edc/spec/serialize.h"
#include "edc/sweep/batch.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/fault_injector.h"

namespace edc::sweep {

namespace {

/// Wall time of instantiate + run for one point, in microseconds.
template <typename Body>
sim::SimResult timed_simulation(Body&& body, double& micros) {
  const auto start = std::chrono::steady_clock::now();
  sim::SimResult result = body();
  micros = std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
               .count();
  return result;
}

}  // namespace

sim::SimResult Runner::simulate_point(const Point& point, double& micros,
                                      char& provenance, char& origin) const {
  const auto simulate = [&point] {
    auto system = spec::instantiate(point.spec);
    return system.run();
  };
  provenance = kProvenanceScalar;
  origin = kOriginFresh;
  Cache* cache = options_.cache;
  const FaultInjector* chaos = options_.fault_injector;
  if (cache == nullptr && chaos == nullptr) {
    return timed_simulation(simulate, micros);
  }
  if (!spec::is_cacheable(point.spec)) {
    // No canonical key: neither cacheable nor fault-injectable.
    if (cache != nullptr) cache->note_non_cacheable();
    return timed_simulation(simulate, micros);
  }
  const std::string key = spec::serialize(point.spec);
  if (cache != nullptr) {
    if (auto cached = cache->load(key)) {
      // Report the point's *original* simulation cost and provenance, not
      // the load time — that is what a cost-weighted re-shard of the warm
      // grid needs (and a warm batch-produced point must keep reporting
      // its amortized lane cost as such). Only `origin` says "warm": it
      // describes this run, not the stored entry.
      micros = cached->micros;
      provenance = cached->provenance;
      origin = kOriginWarm;
      return std::move(cached->result);
    }
  }
  // May inject latency or throw WorkerKilledError (see RunnerOptions).
  if (chaos != nullptr) chaos->before_simulate(spec::fnv1a64(key));
  sim::SimResult result = timed_simulation(simulate, micros);
  if (cache != nullptr) cache->store(key, result, micros, kProvenanceScalar);
  return result;
}

namespace {

/// Sizes all report columns to `rows` with the fresh-scalar defaults every
/// execution path then overwrites per slot.
void reset_report(RunReport* report, std::size_t rows) {
  if (report == nullptr) return;
  report->micros.assign(rows, 0.0);
  report->provenance.assign(rows, kProvenanceScalar);
  report->origin.assign(rows, kOriginFresh);
}

/// Writes one row's telemetry into its report slot.
void record_row(RunReport* report, std::size_t slot, double micros,
                char provenance, char origin) {
  if (report == nullptr) return;
  report->micros[slot] = micros;
  report->provenance[slot] = provenance;
  report->origin[slot] = origin;
}

}  // namespace

std::vector<sim::SimResult> Runner::run(const Grid& grid, RunReport* report) const {
  std::vector<sim::SimResult> rows(grid.size());
  reset_report(report, rows.size());
  if (options_.batch) {
    std::vector<BatchPointRef> refs(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) refs[i] = BatchPointRef{i, i};
    run_batched(grid, refs, options_, scalar_point_fn(), rows, report);
    return rows;
  }
  for_each_point(grid, [this, &rows, report](const Point& point) {
    double cost = 0.0;
    char source = kProvenanceScalar;
    char from = kOriginFresh;
    rows[point.index] = simulate_point(point, cost, source, from);
    record_row(report, point.index, cost, source, from);
  });
  return rows;
}

std::vector<sim::SimResult> Runner::run_shard(const Grid& grid, const Shard& shard,
                                              RunReport* report) const {
  std::vector<sim::SimResult> rows(shard.owned_count(grid.size()));
  reset_report(report, rows.size());
  if (options_.batch) {
    // Owned points are strided index % count == index0, so the row slot of
    // global point i is simply i / count.
    std::vector<BatchPointRef> refs;
    refs.reserve(rows.size());
    for (std::size_t slot = 0; slot < rows.size(); ++slot) {
      refs.push_back(BatchPointRef{shard.index + slot * shard.count, slot});
    }
    run_batched(grid, refs, options_, scalar_point_fn(), rows, report);
    return rows;
  }
  for_each_point(grid, shard, [this, &shard, &rows, report](const Point& point) {
    const std::size_t slot = point.index / shard.count;
    double cost = 0.0;
    char source = kProvenanceScalar;
    char from = kOriginFresh;
    rows[slot] = simulate_point(point, cost, source, from);
    record_row(report, slot, cost, source, from);
  });
  return rows;
}

std::vector<sim::SimResult> Runner::run_assignment(const Grid& grid,
                                                   const ShardAssignment& assignment,
                                                   std::size_t shard_index,
                                                   RunReport* report) const {
  const std::vector<std::size_t>& owned = assignment.owned.at(shard_index);
  // Row slot of global point i: its position in the (ascending) owned list.
  std::vector<sim::SimResult> rows(owned.size());
  reset_report(report, rows.size());
  if (options_.batch) {
    std::vector<BatchPointRef> refs;
    refs.reserve(owned.size());
    for (std::size_t slot = 0; slot < owned.size(); ++slot) {
      refs.push_back(BatchPointRef{owned[slot], slot});
    }
    run_batched(grid, refs, options_, scalar_point_fn(), rows, report);
    return rows;
  }
  for_each_point(grid, owned, [this, &owned, &rows, report](const Point& point) {
    const auto slot = static_cast<std::size_t>(
        std::lower_bound(owned.begin(), owned.end(), point.index) - owned.begin());
    double cost = 0.0;
    char source = kProvenanceScalar;
    char from = kOriginFresh;
    rows[slot] = simulate_point(point, cost, source, from);
    record_row(report, slot, cost, source, from);
  });
  return rows;
}

ScalarPointFn Runner::scalar_point_fn() const {
  return [this](const Point& point, double& micros, char& provenance, char& origin) {
    return simulate_point(point, micros, provenance, origin);
  };
}

int Runner::thread_count(std::size_t point_count) const noexcept {
  int threads = options_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (point_count < static_cast<std::size_t>(threads)) {
    threads = static_cast<int>(point_count);
  }
  return std::max(threads, 1);
}

void Runner::for_each_point(const Grid& grid,
                            const std::function<void(const Point&)>& body) const {
  for_each_point(grid, Shard{}, body);
}

void Runner::for_each_point(const Grid& grid, const Shard& shard,
                            const std::function<void(const Point&)>& body) const {
  const auto global_index = [&shard](std::size_t position) {
    return shard.index + position * shard.count;
  };
  pooled_for_each(grid, shard.owned_count(grid.size()), global_index, body);
}

void Runner::for_each_point(const Grid& grid, const std::vector<std::size_t>& points,
                            const std::function<void(const Point&)>& body) const {
  const auto global_index = [&points](std::size_t position) {
    return points[position];
  };
  pooled_for_each(grid, points.size(), global_index, body);
}

template <typename IndexFn>
void Runner::pooled_for_each(const Grid& grid, std::size_t count,
                             const IndexFn& global_index,
                             const std::function<void(const Point&)>& body) const {
  if (count == 0) return;
  const int threads = thread_count(count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) body(grid.point(global_index(i)));
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(grid.point(global_index(i)));
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace edc::sweep
