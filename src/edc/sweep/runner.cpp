#include "edc/sweep/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "edc/spec/serialize.h"
#include "edc/sweep/cache.h"

namespace edc::sweep {

sim::SimResult Runner::simulate_point(const Point& point) const {
  Cache* cache = options_.cache;
  if (cache == nullptr) {
    auto system = spec::instantiate(point.spec);
    return system.run();
  }
  if (!spec::is_cacheable(point.spec)) {
    cache->note_non_cacheable();
    auto system = spec::instantiate(point.spec);
    return system.run();
  }
  const std::string key = spec::serialize(point.spec);
  if (auto cached = cache->load(key)) return std::move(*cached);
  auto system = spec::instantiate(point.spec);
  sim::SimResult result = system.run();
  cache->store(key, result);
  return result;
}

std::vector<sim::SimResult> Runner::run(const Grid& grid) const {
  std::vector<sim::SimResult> rows(grid.size());
  for_each_point(grid, [this, &rows](const Point& point) {
    rows[point.index] = simulate_point(point);
  });
  return rows;
}

std::vector<sim::SimResult> Runner::run_shard(const Grid& grid,
                                              const Shard& shard) const {
  std::vector<sim::SimResult> rows(shard.owned_count(grid.size()));
  for_each_point(grid, shard, [this, &shard, &rows](const Point& point) {
    // Owned points are strided index % count == index0, so the row slot of
    // global point i is simply i / count.
    rows[point.index / shard.count] = simulate_point(point);
  });
  return rows;
}

int Runner::thread_count(std::size_t point_count) const noexcept {
  int threads = options_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (point_count < static_cast<std::size_t>(threads)) {
    threads = static_cast<int>(point_count);
  }
  return std::max(threads, 1);
}

void Runner::for_each_point(const Grid& grid,
                            const std::function<void(const Point&)>& body) const {
  for_each_point(grid, Shard{}, body);
}

void Runner::for_each_point(const Grid& grid, const Shard& shard,
                            const std::function<void(const Point&)>& body) const {
  const std::size_t count = shard.owned_count(grid.size());
  if (count == 0) return;
  const auto global_index = [&shard](std::size_t position) {
    return shard.index + position * shard.count;
  };

  const int threads = thread_count(count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) body(grid.point(global_index(i)));
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(grid.point(global_index(i)));
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace edc::sweep
