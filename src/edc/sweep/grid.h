// Cartesian design-space grids over value-semantic system specs.
//
// A Grid is a base spec::SystemSpec plus parameter axes. Each axis is a
// named list of labelled mutations; the grid enumerates the cartesian
// product in row-major order (the first axis varies slowest), which is
// exactly the iteration order of the nested for-loops the bench programs
// used to hand-roll:
//
//   sweep::Grid grid(base);
//   grid.capacitance_axis({10e-6, 22e-6, 47e-6})
//       .axis("policy", {{"hibernus", [](spec::SystemSpec& s) {
//                           s.policy = spec::Hibernus{};
//                         }},
//                        {"quickrecall", [](spec::SystemSpec& s) {
//                           s.policy = spec::QuickRecall{};
//                         }}});
//   grid.point(3)  // C = 22 uF (axis 0, index 1) x hibernus (axis 1, index 0)
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "edc/spec/system_spec.h"

namespace edc::sweep {

/// Edits one parameter of a spec (a grid point applies one per axis).
using Mutator = std::function<void(spec::SystemSpec&)>;

/// One labelled position on an axis.
struct AxisValue {
  std::string label;
  Mutator apply;
};

struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

/// One fully resolved grid point: the mutated spec plus the axis labels
/// that produced it (labels[i] belongs to axes()[i]).
struct Point {
  std::size_t index = 0;
  spec::SystemSpec spec;
  std::vector<std::string> labels;
};

class Grid {
 public:
  explicit Grid(spec::SystemSpec base);

  /// Adds one cartesian axis; earlier axes vary slowest. Every value's
  /// mutator must be callable; the value list must not be empty.
  Grid& axis(std::string name, std::vector<AxisValue> values);

  /// Numeric axis with a custom setter; points are labelled by `label`
  /// (default: engineering-free "%g" formatting).
  Grid& numeric_axis(std::string name, const std::vector<double>& values,
                     const std::function<void(spec::SystemSpec&, double)>& set,
                     const std::function<std::string(double)>& label = {});

  /// Axis over storage.capacitance, labelled in engineering notation.
  Grid& capacitance_axis(const std::vector<Farads>& values);

  /// Axis over workload.seed (per-point RNG isolation for stochastic
  /// workloads).
  Grid& workload_seed_axis(const std::vector<std::uint64_t>& seeds);

  /// Axis over a measured-dataset directory: one value per "*.csv" file in
  /// `dataset_dir` (sorted by filename; see spec::list_trace_csvs), each
  /// setting spec.source to the loaded "time,volts" trace behind the
  /// rectifier front-end. Labels are the file basenames, so reports, cache
  /// keys and shard CSVs name the dataset file directly — the paper's
  /// measured-source comparisons become one-liners:
  ///
  ///   grid.voltage_trace_dir_axis("harvester", "datasets/")
  ///       .capacitance_axis({10e-6, 47e-6});
  Grid& voltage_trace_dir_axis(std::string name, const std::string& dataset_dir,
                               Ohms series_resistance = 50.0);

  /// As voltage_trace_dir_axis, for "time,watts" traces feeding the
  /// harvester-converter front-end.
  Grid& power_trace_dir_axis(std::string name, const std::string& dataset_dir);

  /// Number of points: the product of the axis sizes (1 = just the base).
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] const std::vector<Axis>& axes() const noexcept { return axes_; }
  [[nodiscard]] const spec::SystemSpec& base() const noexcept { return base_; }

  /// Materialises point `index` (row-major). Axis mutators are applied to a
  /// copy of the base spec in axis order.
  [[nodiscard]] Point point(std::size_t index) const;

 private:
  spec::SystemSpec base_;
  std::vector<Axis> axes_;
};

}  // namespace edc::sweep
