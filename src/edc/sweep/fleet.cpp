#include "edc/sweep/fleet.h"

#include <string>
#include <utility>

namespace edc::sweep {

std::vector<AxisValue> fleet_node_axis(const spec::FleetSpec& fleet) {
  spec::validate_fleet(fleet);
  std::vector<AxisValue> values;
  values.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    spec::SystemSpec lowered = spec::fleet_node_spec(fleet, i);
    values.push_back({"node" + std::to_string(i),
                      [lowered = std::move(lowered)](spec::SystemSpec& s) {
                        s = lowered;
                      }});
  }
  return values;
}

Grid fleet_grid(const spec::FleetSpec& fleet) {
  Grid grid(spec::fleet_node_spec(fleet, 0));
  grid.axis("node", fleet_node_axis(fleet));
  return grid;
}

sim::FleetResult run_fleet(const spec::FleetSpec& fleet, const Runner& runner,
                           RunReport* report) {
  const Grid grid = fleet_grid(fleet);
  sim::FleetResult result;
  result.nodes = runner.run(grid, report);
  return result;
}

}  // namespace edc::sweep
