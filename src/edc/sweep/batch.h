// Lockstep batching of sweep grids (the sweep-side half of the batched SoA
// kernel; the stepping itself lives in sim/batch_kernel.h).
//
// Grid points whose *shared-lattice* axes agree — source, front-end, dt,
// node substeps — can advance in lockstep with one source evaluation per
// substep instant broadcast across all of them. batch_group_key() canonises
// exactly those axes into a string key (via spec::serialize on a stripped
// spec), so grouping is a hash-map partition; everything else — storage,
// policy, workload, horizon, probes, governor, macro flags — varies freely
// within a group. Points whose source cannot be shared (custom factories,
// unset sources) get no key and take the scalar path unchanged.
//
// run_batched() is the Runner's batch execution strategy
// (RunnerOptions::batch): resolve cache hits, group the rest, chunk groups
// into <= batch_lanes lanes, and execute chunks through sim::BatchKernel —
// with singleton groups and ungroupable points falling back to the
// caller-supplied scalar simulation. Per-point results are bit-identical
// to the scalar runner (tests/batch_diff_test.cpp); what changes is the
// wall time and the *provenance* of the recorded cost: a batched point's
// micros is the chunk's wall time amortized over its lanes, which is the
// right weight for LPT sharding of a future batched run but must never be
// silently mixed into a scalar shard plan — hence the provenance codes
// below, carried through the cache (sweep/cache.h), the CSV reports
// (sweep/report.h) and the shard-plan tooling (bench/eq5_crossover.cpp).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "edc/sim/simulator.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"

namespace edc::sweep {

/// Execution-path provenance of a sweep row's result + recorded cost.
inline constexpr char kProvenanceScalar = 's';  ///< scalar Simulator, per-point wall time
inline constexpr char kProvenanceBatch = 'b';   ///< SoA kernel, amortized lane cost

/// The lockstep grouping key: a canonical serialization of exactly the
/// axes every lane of a sim::BatchKernel must share (source + front-end
/// + dt + node_substeps, embedded in an otherwise default spec). Returns
/// nullopt when the point cannot join a group: custom source factories
/// (not serializable, and each instantiation may differ), or no source at
/// all. Two points with equal keys instantiate structurally identical,
/// batchable drivers — deterministic sources make equal specs sample
/// identically — which is what SupplyNode::step_lanes' broadcast relies on.
[[nodiscard]] std::optional<std::string> batch_group_key(
    const spec::SystemSpec& spec);

/// One point of a batched execution: the grid point to simulate and the
/// output slot its row/micros/provenance land in (callers pass their own
/// slot mapping: identity for run(), strided for run_shard(), ...).
struct BatchPointRef {
  std::size_t global_index = 0;
  std::size_t slot = 0;
};

/// Splits a lane group's measured wall time into per-lane amortized costs
/// whose *sum reproduces the measurement* at microsecond resolution: each
/// lane gets floor(total/n) whole microseconds and the first total%n lanes
/// carry one extra. Plain wall/n leaks up to (lanes-1) us of rounding per
/// group once the costs are serialized, so `--timing-csv` column totals
/// drift away from the wall time a shard planner has to budget against;
/// remainder distribution keeps the totals exact while every lane still
/// differs by at most 1 us from the even split. Returns an empty vector
/// when `lanes` is 0; negative measurements clamp to zero.
[[nodiscard]] std::vector<double> amortize_lane_micros(double wall_micros,
                                                       std::size_t lanes);

/// Scalar fallback used for cache-cold points that cannot batch: simulate
/// `point`, report its wall-time cost, provenance and origin
/// (kOriginFresh/kOriginWarm, see sweep/runner.h).
using ScalarPointFn = std::function<sim::SimResult(
    const Point& point, double& micros, char& provenance, char& origin)>;

/// Executes `points` of `grid` under the batching strategy described above
/// and writes each result into rows[ref.slot] (plus the matching
/// report columns when `report` is non-null; rows and report must already
/// be sized by the caller). Work units (batch chunks and scalar points)
/// run across options.threads workers; rows are bit-identical regardless
/// of thread count. options.cache, when set, resolves warm points up front
/// (replaying their stored provenance, marked kOriginWarm) and stores
/// freshly batched points with kProvenanceBatch.
void run_batched(const Grid& grid, const std::vector<BatchPointRef>& points,
                 const RunnerOptions& options, const ScalarPointFn& scalar_point,
                 std::vector<sim::SimResult>& rows, RunReport* report);

}  // namespace edc::sweep
