// Fleet adapters for the sweep stack: FleetSpec in, ordinary grid out.
//
// Because coupling is lowered into each node's spec (spec/fleet_spec.h),
// a fleet is just a one-axis grid whose points are the lowered per-node
// SystemSpecs — and the whole Cache/Runner/Search stack works on it
// unchanged. Warm fleet reruns replay every node from the cache (the
// cache keys are the lowered node specs' spec_hashes), shards split a
// fleet across processes, and solver-guided searches treat the node axis
// as a variant axis (tools/design_query --fleet-demo asks "the smallest
// capacitance at which *every* coupled node completes").
//
//   const spec::FleetSpec fleet = spec::example_rf_fleet(3);
//   sweep::Runner runner({.cache = &cache});
//   sweep::RunReport report;
//   const sim::FleetResult result = sweep::run_fleet(fleet, runner, &report);
//   // report.fresh_count() == 3 cold, == 0 on the warm rerun
#pragma once

#include <vector>

#include "edc/sim/fleet_result.h"
#include "edc/spec/fleet_spec.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"

namespace edc::sweep {

/// One AxisValue per fleet node: label "node<i>", mutator substituting the
/// *lowered* node spec wholesale (coupling folded in). Suitable both for
/// fleet_grid() and as the variant axis of a sweep::Search. Validates the
/// fleet (throws std::invalid_argument, see spec::validate_fleet).
[[nodiscard]] std::vector<AxisValue> fleet_node_axis(const spec::FleetSpec& fleet);

/// The fleet as an ordinary sweep grid: one "node" axis over the lowered
/// per-node specs (grid.point(i).spec == spec::fleet_node_spec(fleet, i)).
/// Compose further axes on top to sweep a design parameter across the
/// whole fleet at once.
[[nodiscard]] Grid fleet_grid(const spec::FleetSpec& fleet);

/// Simulates the fleet through `runner` (cache, batching, threads and
/// fault injection all apply) and returns the per-node results as a
/// sim::FleetResult. Row i is node i. Bit-identical to
/// sim::FleetSimulator(fleet).run() — pinned in tests/fleet_test.cpp.
/// When `report` is non-null it receives the per-node RunReport, whose
/// fresh/warm accounting is what the fleet smoke test gates on.
[[nodiscard]] sim::FleetResult run_fleet(const spec::FleetSpec& fleet,
                                         const Runner& runner,
                                         RunReport* report = nullptr);

}  // namespace edc::sweep
