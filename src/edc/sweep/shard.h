// Process-level sharding of sweep grids.
//
// A Shard names one of N index-striding slices of a grid: shard k of N
// owns every point whose global index i satisfies i % N == k. Striding
// (rather than contiguous blocks) balances load when one axis
// monotonically changes per-point cost (e.g. a capacitance axis that
// lengthens brown-out tails), and makes ownership independent of the grid
// size, so the same "--shard k/N" flag works for any grid shape.
//
// Independent processes (or machines) each run their own shard with
// Runner::run_shard and write a shard CSV (report.h: write_shard_csv);
// tools/sweep_merge — or merge_shard_csvs() — reassembles the per-shard
// files into a CSV byte-identical to the unsharded serial run:
//
//   bench --shard 0/2 --csv a.csv     # machine A
//   bench --shard 1/2 --csv b.csv     # machine B
//   sweep_merge merged.csv a.csv b.csv
//
// The merge is strict: shards must agree on grid size, shard count and
// header, cover every point exactly once, and carry no duplicates —
// anything else throws, so a lost or doubled shard can never produce a
// silently truncated table.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace edc::sweep {

struct Shard {
  std::size_t index = 0;  ///< this shard's id, in [0, count)
  std::size_t count = 1;  ///< total number of shards

  /// True when this shard simulates global point `point_index`.
  [[nodiscard]] bool owns(std::size_t point_index) const noexcept {
    return point_index % count == index;
  }

  /// Number of points this shard owns in a grid of `grid_size` points.
  [[nodiscard]] std::size_t owned_count(std::size_t grid_size) const noexcept {
    return grid_size / count + (grid_size % count > index ? 1 : 0);
  }

  /// Ascending global indices of the owned points.
  [[nodiscard]] std::vector<std::size_t> owned_points(std::size_t grid_size) const;

  /// True for the trivial 1-of-1 shard (an unsharded run).
  [[nodiscard]] bool is_full() const noexcept { return count == 1; }

  /// Parses "k/N" (e.g. "0/4"); requires N >= 1 and k < N. Throws
  /// std::invalid_argument on malformed input.
  static Shard parse(const std::string& text);

  /// "k/N" — the inverse of parse().
  [[nodiscard]] std::string to_string() const;
};

/// Cost-weighted shard scheduling (ROADMAP): an explicit partition of a
/// grid's points into shards, built from the measured per-point wall times
/// a previous run recorded (Runner::run(grid, &report).micros; cache hits
/// replay the point's original cost, so a warm grid re-shards for free).
///
/// Index striding balances only when per-point cost varies smoothly along
/// the grid; one expensive corner (a long brown-out tail, a slow policy)
/// can make one stride-shard the straggler. balanced() runs LPT
/// (longest-processing-time-first): points in descending cost order, each
/// to the currently least-loaded shard — a classic 4/3-approximation of
/// the optimal makespan, deterministic here so every process computes the
/// identical partition from the identical timing vector.
struct ShardAssignment {
  /// owned[k] = ascending global indices shard k simulates. Every point
  /// appears exactly once across the shards.
  std::vector<std::vector<std::size_t>> owned;

  [[nodiscard]] std::size_t count() const noexcept { return owned.size(); }

  /// The index-striding fallback partition: shard k owns i % count == k,
  /// identical to Shard::owned_points for every k.
  static ShardAssignment striding(std::size_t grid_size, std::size_t count);

  /// LPT-balanced partition of `micros` (one positive cost per grid
  /// point). Ties break deterministically (lower point index first, lower
  /// shard index on equal load). Falls back to striding(micros.size(),
  /// count) when timings are absent: an empty vector or any non-positive
  /// entry (a point that never ran has no measured cost).
  static ShardAssignment balanced(const std::vector<double>& micros,
                                  std::size_t count);

  /// Predicted wall time of the slowest shard under per-point costs
  /// `micros` — what LPT minimises; lets callers report the expected
  /// balance win before launching processes.
  [[nodiscard]] double makespan(const std::vector<double>& micros) const;
};

}  // namespace edc::sweep
