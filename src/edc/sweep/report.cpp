#include "edc/sweep/report.h"

#include <ostream>

#include "edc/common/check.h"

namespace edc::sweep {

namespace {

const char* const kMetricColumns[] = {"done",     "t_done (s)", "brownouts",
                                      "saves",    "restores",   "energy (mJ)",
                                      "harvested (mJ)"};

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::vector<std::string> summary_header(const Grid& grid) {
  std::vector<std::string> header;
  header.reserve(grid.axes().size() + std::size(kMetricColumns));
  for (const auto& axis : grid.axes()) header.push_back(axis.name);
  for (const char* column : kMetricColumns) header.emplace_back(column);
  return header;
}

std::vector<std::string> summary_row(const Point& point,
                                     const sim::SimResult& result) {
  std::vector<std::string> row = point.labels;
  const auto& m = result.mcu;
  row.push_back(m.completed ? "yes" : "NO");
  row.push_back(m.completed ? sim::Table::num(m.completion_time, 2) : "-");
  row.push_back(std::to_string(m.brownouts));
  row.push_back(std::to_string(m.saves_completed));
  row.push_back(std::to_string(m.restores));
  row.push_back(sim::Table::num(m.energy_total() * 1e3, 3));
  row.push_back(sim::Table::num(result.harvested * 1e3, 3));
  return row;
}

sim::Table summary_table(const Grid& grid,
                         const std::vector<sim::SimResult>& results) {
  EDC_CHECK(results.size() == grid.size(),
            "result rows do not match the grid size");
  sim::Table table(summary_header(grid));
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.add_row(summary_row(grid.point(i), results[i]));
  }
  return table;
}

void write_csv(std::ostream& out, const Grid& grid,
               const std::vector<sim::SimResult>& results) {
  EDC_CHECK(results.size() == grid.size(),
            "result rows do not match the grid size");
  for (const auto& axis : grid.axes()) out << csv_escape(axis.name) << ',';
  out << "done,t_done_s,brownouts,saves,restores,energy_j,harvested_j\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Point point = grid.point(i);
    for (const auto& label : point.labels) out << csv_escape(label) << ',';
    const auto& m = results[i].mcu;
    out << (m.completed ? 1 : 0) << ',' << m.completion_time << ',' << m.brownouts
        << ',' << m.saves_completed << ',' << m.restores << ','
        << m.energy_total() << ',' << results[i].harvested << '\n';
  }
}

}  // namespace edc::sweep
