#include "edc/sweep/report.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "edc/common/canon.h"
#include "edc/common/check.h"

namespace edc::sweep {

namespace {

const char* const kMetricColumns[] = {"done",     "t_done (s)", "brownouts",
                                      "saves",    "restores",   "energy (mJ)",
                                      "harvested (mJ)"};

constexpr char kShardMagic[] = "# edc-sweep-shard v1 shard ";
constexpr char kAssignmentMagic[] = "# edc-sweep-shard v2 shard ";

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void write_csv_header(std::ostream& out, const Grid& grid, bool with_micros = false,
                      bool with_provenance = false) {
  for (const auto& axis : grid.axes()) out << csv_escape(axis.name) << ',';
  out << "done,t_done_s,brownouts,saves,restores,energy_j,harvested_j";
  if (with_micros) out << ",micros";
  if (with_provenance) out << ",provenance";
}

void write_csv_row(std::ostream& out, const Point& point,
                   const sim::SimResult& result) {
  for (const auto& label : point.labels) out << csv_escape(label) << ',';
  const auto& m = result.mcu;
  out << (m.completed ? 1 : 0) << ',' << m.completion_time << ',' << m.brownouts
      << ',' << m.saves_completed << ',' << m.restores << ',' << m.energy_total()
      << ',' << result.harvested;
}

}  // namespace

std::vector<std::string> summary_header(const Grid& grid) {
  std::vector<std::string> header;
  header.reserve(grid.axes().size() + std::size(kMetricColumns));
  for (const auto& axis : grid.axes()) header.push_back(axis.name);
  for (const char* column : kMetricColumns) header.emplace_back(column);
  return header;
}

std::vector<std::string> summary_row(const Point& point,
                                     const sim::SimResult& result) {
  std::vector<std::string> row = point.labels;
  const auto& m = result.mcu;
  row.push_back(m.completed ? "yes" : "NO");
  row.push_back(m.completed ? sim::Table::num(m.completion_time, 2) : "-");
  row.push_back(std::to_string(m.brownouts));
  row.push_back(std::to_string(m.saves_completed));
  row.push_back(std::to_string(m.restores));
  row.push_back(sim::Table::num(m.energy_total() * 1e3, 3));
  row.push_back(sim::Table::num(result.harvested * 1e3, 3));
  return row;
}

sim::Table summary_table(const Grid& grid,
                         const std::vector<sim::SimResult>& results) {
  EDC_CHECK(results.size() == grid.size(),
            "result rows do not match the grid size");
  sim::Table table(summary_header(grid));
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.add_row(summary_row(grid.point(i), results[i]));
  }
  return table;
}

void write_csv(std::ostream& out, const Grid& grid,
               const std::vector<sim::SimResult>& results,
               const std::vector<double>* micros,
               const std::vector<char>* provenance) {
  EDC_CHECK(results.size() == grid.size(),
            "result rows do not match the grid size");
  EDC_CHECK(micros == nullptr || micros->size() == results.size(),
            "micros rows do not match the result rows");
  EDC_CHECK(provenance == nullptr || provenance->size() == results.size(),
            "provenance rows do not match the result rows");
  EDC_CHECK(provenance == nullptr || micros != nullptr,
            "a provenance column annotates the micros column; pass micros too");
  write_csv_header(out, grid, micros != nullptr, provenance != nullptr);
  out << '\n';
  for (std::size_t i = 0; i < results.size(); ++i) {
    write_csv_row(out, grid.point(i), results[i]);
    if (micros != nullptr) out << ',' << (*micros)[i];
    if (provenance != nullptr) out << ',' << (*provenance)[i];
    out << '\n';
  }
}

namespace {

/// Shared body of the two shard writers: magic line, header, indexed rows.
void write_shard_rows(std::ostream& out, const Grid& grid,
                      const std::vector<std::size_t>& owned,
                      const std::vector<sim::SimResult>& results,
                      const char* magic, const std::string& shard_label) {
  EDC_CHECK(results.size() == owned.size(),
            "result rows do not match the shard's owned point count");
  // The shard format is parsed line-by-line on merge, so a newline inside
  // a label (legal in plain write_csv, where it stays inside a quoted
  // cell) would be misread as a row boundary — refuse it up front.
  for (const auto& axis : grid.axes()) {
    EDC_CHECK(axis.name.find('\n') == std::string::npos,
              "axis name with embedded newline cannot be shard-serialized: '" +
                  axis.name + "'");
    for (const auto& value : axis.values) {
      EDC_CHECK(value.label.find('\n') == std::string::npos,
                "axis label with embedded newline cannot be shard-serialized: '" +
                    value.label + "'");
    }
  }
  out << magic << shard_label << " grid " << grid.size() << '\n';
  out << "# header ";
  write_csv_header(out, grid);
  out << '\n';
  for (std::size_t pos = 0; pos < owned.size(); ++pos) {
    EDC_CHECK(owned[pos] < grid.size(), "owned point index out of range");
    out << owned[pos] << ',';
    write_csv_row(out, grid.point(owned[pos]), results[pos]);
    out << '\n';
  }
}

}  // namespace

void write_shard_csv(std::ostream& out, const Grid& grid, const Shard& shard,
                     const std::vector<sim::SimResult>& results) {
  write_shard_rows(out, grid, shard.owned_points(grid.size()), results,
                   kShardMagic, shard.to_string());
}

void write_assignment_shard_csv(std::ostream& out, const Grid& grid,
                                const ShardAssignment& assignment,
                                std::size_t shard_index,
                                const std::vector<sim::SimResult>& results) {
  EDC_CHECK(shard_index < assignment.count(), "shard index out of range");
  const std::string label = std::to_string(shard_index) + "/" +
                            std::to_string(assignment.count());
  write_shard_rows(out, grid, assignment.owned[shard_index], results,
                   kAssignmentMagic, label);
}

void merge_shard_csvs(const std::vector<std::string>& shard_csvs, std::ostream& out) {
  if (shard_csvs.empty()) {
    throw std::invalid_argument("merge_shard_csvs: no shard files given");
  }

  bool first = true;
  std::size_t grid_size = 0;
  std::size_t shard_count = 0;
  std::string header;
  std::vector<std::string> rows;        // by global index
  std::vector<bool> seen;               // duplicate/coverage tracking
  std::vector<bool> shard_seen;         // one file per shard id

  for (const std::string& text : shard_csvs) {
    std::istringstream in(text);
    std::string line;

    const bool striding = std::getline(in, line) && line.rfind(kShardMagic, 0) == 0;
    const bool assignment = !striding && line.rfind(kAssignmentMagic, 0) == 0;
    if (!striding && !assignment) {
      throw std::invalid_argument("merge_shard_csvs: missing shard header line");
    }
    // "<k>/<N> grid <size>" after the magic prefix (both magics are the
    // same length).
    const std::string meta = line.substr(std::string(kShardMagic).size());
    const std::size_t space = meta.find(' ');
    if (space == std::string::npos || meta.substr(space + 1, 5) != "grid ") {
      throw std::invalid_argument("merge_shard_csvs: malformed shard header: " + line);
    }
    const Shard shard = Shard::parse(meta.substr(0, space));
    std::size_t size = 0;
    try {
      const std::string_view tail = std::string_view(meta).substr(space + 6);
      size = static_cast<std::size_t>(
          canon::parse_u64(tail.substr(0, tail.find(' '))));
    } catch (const canon::FormatError&) {
      throw std::invalid_argument("merge_shard_csvs: malformed grid size: " + line);
    }

    if (first) {
      first = false;
      grid_size = size;
      shard_count = shard.count;
      rows.assign(grid_size, {});
      seen.assign(grid_size, false);
      shard_seen.assign(shard_count, false);
    } else if (size != grid_size || shard.count != shard_count) {
      throw std::invalid_argument(
          "merge_shard_csvs: shards disagree on grid size or shard count");
    }
    if (shard_seen[shard.index]) {
      throw std::invalid_argument("merge_shard_csvs: duplicate shard " +
                                  shard.to_string());
    }
    shard_seen[shard.index] = true;

    if (!std::getline(in, line) || line.rfind("# header ", 0) != 0) {
      throw std::invalid_argument("merge_shard_csvs: missing header line");
    }
    const std::string this_header = line.substr(9);
    if (header.empty()) {
      header = this_header;
    } else if (this_header != header) {
      throw std::invalid_argument("merge_shard_csvs: shards disagree on CSV header");
    }

    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const std::size_t comma = line.find(',');
      if (comma == std::string::npos) {
        throw std::invalid_argument("merge_shard_csvs: malformed row: " + line);
      }
      std::size_t index = 0;
      try {
        index = static_cast<std::size_t>(
            canon::parse_u64(std::string_view(line).substr(0, comma)));
      } catch (const canon::FormatError&) {
        throw std::invalid_argument("merge_shard_csvs: malformed row index: " + line);
      }
      if (index >= grid_size) {
        throw std::invalid_argument("merge_shard_csvs: row index out of range: " +
                                    line);
      }
      // Striding shards carry an index-ownership rule worth checking;
      // assignment (v2) shards own exactly the rows they name, and the
      // coverage/duplicate checks below still reject any bad partition.
      if (striding && !shard.owns(index)) {
        throw std::invalid_argument("merge_shard_csvs: shard " + shard.to_string() +
                                    " does not own point " + std::to_string(index));
      }
      if (seen[index]) {
        throw std::invalid_argument("merge_shard_csvs: duplicate point " +
                                    std::to_string(index));
      }
      seen[index] = true;
      rows[index] = line.substr(comma + 1);
    }
  }

  if (!std::all_of(shard_seen.begin(), shard_seen.end(), [](bool b) { return b; })) {
    throw std::invalid_argument("merge_shard_csvs: missing shard file(s)");
  }
  for (std::size_t i = 0; i < grid_size; ++i) {
    if (!seen[i]) {
      throw std::invalid_argument("merge_shard_csvs: point " + std::to_string(i) +
                                  " is not covered by any shard");
    }
  }

  out << header << '\n';
  for (const std::string& row : rows) out << row << '\n';
}

}  // namespace edc::sweep
