#include "edc/sweep/grid.h"

#include <cstdio>
#include <utility>

#include "edc/common/check.h"
#include "edc/sim/table.h"
#include "edc/spec/trace_loaders.h"

namespace edc::sweep {

Grid::Grid(spec::SystemSpec base) : base_(std::move(base)) {}

Grid& Grid::axis(std::string name, std::vector<AxisValue> values) {
  EDC_CHECK(!values.empty(), "axis '" + name + "' has no values");
  for (const auto& value : values) {
    EDC_CHECK(value.apply != nullptr,
              "axis '" + name + "' value '" + value.label + "' has no mutator");
  }
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

Grid& Grid::numeric_axis(std::string name, const std::vector<double>& values,
                         const std::function<void(spec::SystemSpec&, double)>& set,
                         const std::function<std::string(double)>& label) {
  EDC_CHECK(set != nullptr, "numeric axis '" + name + "' has no setter");
  std::vector<AxisValue> axis_values;
  axis_values.reserve(values.size());
  for (double value : values) {
    std::string text;
    if (label) {
      text = label(value);
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%g", value);
      text = buffer;
    }
    axis_values.push_back(AxisValue{
        std::move(text), [set, value](spec::SystemSpec& s) { set(s, value); }});
  }
  return axis(std::move(name), std::move(axis_values));
}

Grid& Grid::capacitance_axis(const std::vector<Farads>& values) {
  return numeric_axis(
      "capacitance", values,
      [](spec::SystemSpec& s, double c) { s.storage.capacitance = c; },
      [](double c) { return sim::Table::eng(c, "F", 1); });
}

Grid& Grid::voltage_trace_dir_axis(std::string name, const std::string& dataset_dir,
                                   Ohms series_resistance) {
  std::vector<AxisValue> values;
  for (const auto& path : spec::list_trace_csvs(dataset_dir)) {
    // Load eagerly, once: every grid point then shares the same immutable
    // waveform data instead of re-reading the file per instantiation.
    auto source = spec::load_voltage_trace_csv(path, series_resistance);
    std::string label = source.label;
    values.push_back(AxisValue{std::move(label),
                               [source = std::move(source)](spec::SystemSpec& s) {
                                 s.source = source;
                               }});
  }
  return axis(std::move(name), std::move(values));
}

Grid& Grid::power_trace_dir_axis(std::string name, const std::string& dataset_dir) {
  std::vector<AxisValue> values;
  for (const auto& path : spec::list_trace_csvs(dataset_dir)) {
    auto source = spec::load_power_trace_csv(path);
    std::string label = source.label;
    values.push_back(AxisValue{std::move(label),
                               [source = std::move(source)](spec::SystemSpec& s) {
                                 s.source = source;
                               }});
  }
  return axis(std::move(name), std::move(values));
}

Grid& Grid::workload_seed_axis(const std::vector<std::uint64_t>& seeds) {
  std::vector<AxisValue> values;
  values.reserve(seeds.size());
  for (std::uint64_t seed : seeds) {
    values.push_back(AxisValue{std::to_string(seed), [seed](spec::SystemSpec& s) {
                                 s.workload.seed = seed;
                               }});
  }
  return axis("seed", std::move(values));
}

std::size_t Grid::size() const noexcept {
  std::size_t n = 1;
  for (const auto& axis : axes_) n *= axis.values.size();
  return n;
}

Point Grid::point(std::size_t index) const {
  EDC_CHECK(index < size(), "grid point index out of range");
  Point point;
  point.index = index;
  point.spec = base_;
  point.labels.reserve(axes_.size());

  // Row-major decomposition: the last axis has stride 1.
  std::size_t stride = size();
  for (const auto& axis : axes_) {
    stride /= axis.values.size();
    const std::size_t value_index = (index / stride) % axis.values.size();
    const AxisValue& value = axis.values[value_index];
    value.apply(point.spec);
    point.labels.push_back(value.label);
  }
  return point;
}

}  // namespace edc::sweep
