#include "edc/sweep/fault_injector.h"

#include <chrono>
#include <thread>

namespace edc::sweep {

namespace {

// Operation codes: part of the schedule key, so the same (seed, key)
// draws independently for each seam.
enum Op : int {
  kOpRead = 1,
  kOpTruncate,
  kOpWrite,
  kOpRename,
  kOpSlow,
  kOpKill,
  kOpCrashWrite,
  kOpCrashRename,
};

/// splitmix64: a full-avalanche mixer, so op/key/occurrence bits all
/// perturb every output bit (the standard seeding finalizer).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultInjector::roll(int op, std::uint64_t key, double p) const {
  if (p <= 0.0) return false;
  std::uint64_t occurrence = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Composite counter key; mixing op into the key spreads the
    // per-operation streams across the map.
    occurrence = occurrences_[mix64(key + static_cast<std::uint64_t>(op))]++;
  }
  const std::uint64_t draw =
      mix64(mix64(plan_.seed ^ (static_cast<std::uint64_t>(op) << 56)) ^
            mix64(key) ^ occurrence);
  // Top 53 bits -> uniform double in [0, 1).
  const double uniform = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return uniform < p;
}

bool FaultInjector::fail_read(std::uint64_t key) const {
  const bool fail = roll(kOpRead, key, plan_.read_error);
  if (fail) ++read_errors_;
  return fail;
}

bool FaultInjector::truncate_read(std::uint64_t key) const {
  const bool fail = roll(kOpTruncate, key, plan_.truncate_read);
  if (fail) ++truncated_reads_;
  return fail;
}

bool FaultInjector::fail_write(std::uint64_t key) const {
  const bool fail = roll(kOpWrite, key, plan_.write_error);
  if (fail) ++write_errors_;
  return fail;
}

bool FaultInjector::fail_rename(std::uint64_t key) const {
  const bool fail = roll(kOpRename, key, plan_.rename_error);
  if (fail) ++rename_errors_;
  return fail;
}

bool FaultInjector::crash_mid_write(std::uint64_t key) const {
  return roll(kOpCrashWrite, key, plan_.crash_mid_write);
}

bool FaultInjector::crash_before_rename(std::uint64_t key) const {
  return roll(kOpCrashRename, key, plan_.crash_before_rename);
}

void FaultInjector::before_simulate(std::uint64_t key) const {
  if (roll(kOpSlow, key, plan_.slow_point)) {
    ++slow_points_;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(plan_.slow_millis));
  }
  if (plan_.kill_worker > 0.0) {
    bool kill = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      // Once-per-key: decide on the first attempt only; later attempts
      // (the retries a fault-tolerant caller issues) always pass.
      auto [it, first_attempt] = killed_.try_emplace(key, false);
      if (first_attempt) {
        // Inline Bernoulli draw (occurrence 0) under the already-held
        // lock; roll() would deadlock re-taking mutex_.
        const std::uint64_t draw = mix64(
            mix64(plan_.seed ^ (static_cast<std::uint64_t>(kOpKill) << 56)) ^
            mix64(key));
        kill = static_cast<double>(draw >> 11) * 0x1.0p-53 < plan_.kill_worker;
        it->second = kill;
      }
    }
    if (kill) {
      ++worker_kills_;
      throw WorkerKilledError("fault injection: worker killed mid-point");
    }
  }
}

FaultCounters FaultInjector::counters() const {
  FaultCounters counters;
  counters.read_errors = read_errors_.load();
  counters.truncated_reads = truncated_reads_.load();
  counters.write_errors = write_errors_.load();
  counters.rename_errors = rename_errors_.load();
  counters.slow_points = slow_points_.load();
  counters.worker_kills = worker_kills_.load();
  return counters;
}

}  // namespace edc::sweep
