// Deterministic seeded fault schedules for the cache / runner / service
// I/O seams.
//
// Robustness claims ("a corrupt entry is quarantined", "a killed worker is
// retried", "a slow point trips the watchdog") are only worth anything if
// they are *tested under faults*, and the tests are only debuggable if the
// faults are reproducible. A FaultInjector turns a seed plus a set of
// per-operation probabilities into a pure fault schedule: whether the k-th
// read of cache entry X fails is a function of (seed, operation, key hash,
// occurrence index) — never of wall time or thread interleaving — so a
// request storm under injected chaos replays the same chaos every run.
//
//   sweep::FaultPlan plan;
//   plan.seed = 42;
//   plan.read_error = 0.15;      // 15% of cache reads report I/O errors
//   plan.truncate_read = 0.15;   // 15% hand back a truncated prefix
//   plan.kill_worker = 0.2;      // 20% of points lose their first worker
//   sweep::FaultInjector chaos(plan);
//   cache.set_fault_injector(&chaos);      // cache I/O seams
//   options.fault_injector = &chaos;       // runner simulation seam
//
// Faults are *transient by occurrence*: the schedule decides each
// occurrence of (operation, key) independently, so a read that fails now
// can succeed on retry — which is exactly the failure model the
// degradation paths (quarantine-and-resimulate, retry-with-backoff) are
// designed for. The one exception is kill_worker, which fires at most once
// per key: a point loses its first worker and must be retried, but the
// retry is allowed to finish (the "one killed worker" acceptance shape).
//
// The crash_* knobs are harsher: they terminate the *process* (_exit) at a
// chosen instant inside Cache::store, for fork-based kill-during-store
// tests proving the atomic tmp+rename discipline never exposes a partial
// entry. They default to 0 and must never be set in a process you care
// about.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace edc::sweep {

/// Per-operation fault probabilities, all in [0, 1]. Decisions are
/// deterministic per (seed, operation, key, occurrence) — see above.
struct FaultPlan {
  std::uint64_t seed = 0;
  // Cache seams (key = FNV-1a-64 of the canonical spec text).
  double read_error = 0.0;     ///< load(): the entry reads as unreadable
  double truncate_read = 0.0;  ///< load(): the entry reads back truncated
  double write_error = 0.0;    ///< store(): the temp-file write fails
  double rename_error = 0.0;   ///< store(): the rename into place fails
  // Runner seam (before each simulation attempt of a point).
  double slow_point = 0.0;   ///< inject `slow_millis` of latency
  double slow_millis = 0.0;  ///< injected latency per slow attempt
  double kill_worker = 0.0;  ///< first attempt throws WorkerKilledError
                             ///< (at most once per key; retries succeed)
  // Process-kill seams inside Cache::store (fork-based crash tests only).
  double crash_mid_write = 0.0;      ///< _exit(9) with the tmp file half-written
  double crash_before_rename = 0.0;  ///< _exit(9) after write, before rename
};

/// Thrown by the runner seam when the schedule kills a point's worker:
/// the simulation attempt is lost as if the thread died. Callers that
/// promise fault tolerance (the serve engine) catch it and retry; callers
/// that don't (a plain Runner::run) surface it loudly.
class WorkerKilledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How often each fault actually fired (for "the storm really stormed"
/// assertions — a chaos test whose chaos never triggered proves nothing).
struct FaultCounters {
  std::uint64_t read_errors = 0;
  std::uint64_t truncated_reads = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t rename_errors = 0;
  std::uint64_t slow_points = 0;
  std::uint64_t worker_kills = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  // ---- cache seams (called by sweep::Cache; thread-safe) -------------------
  [[nodiscard]] bool fail_read(std::uint64_t key) const;
  [[nodiscard]] bool truncate_read(std::uint64_t key) const;
  [[nodiscard]] bool fail_write(std::uint64_t key) const;
  [[nodiscard]] bool fail_rename(std::uint64_t key) const;
  [[nodiscard]] bool crash_mid_write(std::uint64_t key) const;
  [[nodiscard]] bool crash_before_rename(std::uint64_t key) const;

  /// Runner seam: called before every simulation attempt of the keyed
  /// point. May sleep (slow point) and may throw WorkerKilledError (at
  /// most once per key). Thread-safe.
  void before_simulate(std::uint64_t key) const;

  [[nodiscard]] FaultCounters counters() const;
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// The schedule core: deterministic Bernoulli(p) draw for the n-th
  /// occurrence of (op, key) under this seed, where n is tracked
  /// internally per (op, key).
  [[nodiscard]] bool roll(int op, std::uint64_t key, double p) const;

  FaultPlan plan_;
  mutable std::mutex mutex_;
  /// Occurrence counters per (op, key); 64-bit mixed composite key (a
  /// collision would merely merge two counters, never break determinism
  /// within a run).
  mutable std::unordered_map<std::uint64_t, std::uint64_t> occurrences_;
  /// Keys whose worker kill already fired (kill_worker is once-per-key).
  mutable std::unordered_map<std::uint64_t, bool> killed_;
  mutable std::atomic<std::uint64_t> read_errors_{0};
  mutable std::atomic<std::uint64_t> truncated_reads_{0};
  mutable std::atomic<std::uint64_t> write_errors_{0};
  mutable std::atomic<std::uint64_t> rename_errors_{0};
  mutable std::atomic<std::uint64_t> slow_points_{0};
  mutable std::atomic<std::uint64_t> worker_kills_{0};
};

}  // namespace edc::sweep
