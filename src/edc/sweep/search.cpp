#include "edc/sweep/search.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "edc/common/check.h"

namespace edc::sweep {

namespace {

std::string format_value(double x) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", x);
  return buffer;
}

int sign_of(double value) { return value > 0.0 ? 1 : -1; }

}  // namespace

const char* search_error_kind_name(SearchErrorKind kind) noexcept {
  switch (kind) {
    case SearchErrorKind::kNoBracket:
      return "no-bracket";
    case SearchErrorKind::kDegenerate:
      return "degenerate";
    case SearchErrorKind::kNonMonotone:
      return "non-monotone";
    case SearchErrorKind::kReversed:
      return "reversed";
    case SearchErrorKind::kBudget:
      return "budget";
  }
  return "unknown";
}

std::size_t SearchOutcome::simulated_points() const noexcept {
  std::size_t n = 0;
  for (const SearchProbe& probe : probes) n += probe.simulated;
  return n;
}

std::size_t SearchOutcome::warm_points() const noexcept {
  std::size_t n = 0;
  for (const SearchProbe& probe : probes) n += probe.warm;
  return n;
}

double SearchOutcome::micros_total() const noexcept {
  double total = 0.0;
  for (const SearchProbe& probe : probes) total += probe.micros;
  return total;
}

Search::Search(spec::SystemSpec base, SearchAxis axis, SearchObjective objective,
               SearchOptions options)
    : Search(std::move(base), std::move(axis), std::string(), {},
             std::move(objective), std::move(options)) {}

Search::Search(spec::SystemSpec base, SearchAxis axis,
               std::string variant_axis_name, std::vector<AxisValue> variants,
               SearchObjective objective, SearchOptions options)
    : base_(std::move(base)),
      axis_(std::move(axis)),
      variant_axis_name_(std::move(variant_axis_name)),
      variants_(std::move(variants)),
      objective_(std::move(objective)),
      options_(std::move(options)),
      runner_(options_.runner) {
  EDC_CHECK(static_cast<bool>(axis_.set), "search axis needs a setter");
  EDC_CHECK(!axis_.name.empty(), "search axis needs a name");
  EDC_CHECK(static_cast<bool>(objective_), "search needs an objective");
  EDC_CHECK(variant_axis_name_.empty() == variants_.empty(),
            "variant axis name and values go together");
  EDC_CHECK(options_.max_probes >= 2, "a bracket needs at least two probes");
  EDC_CHECK(options_.direction >= -1 && options_.direction <= 1,
            "direction must be -1, 0 or +1");
}

Grid Search::probe_grid(double x) const { return dense_grid({x}); }

Grid Search::dense_grid(const std::vector<double>& lattice) const {
  Grid grid(base_);
  grid.numeric_axis(axis_.name, lattice, axis_.set, axis_.label);
  if (!variants_.empty()) grid.axis(variant_axis_name_, variants_);
  return grid;
}

const SearchProbe& Search::probe(double x) {
  if (const auto it = probe_at_.find(x); it != probe_at_.end()) {
    return probes_[it->second];
  }
  if (probes_.size() >= options_.max_probes) {
    fail(SearchErrorKind::kBudget,
         "probe budget of " + std::to_string(options_.max_probes) +
             " exhausted before the bracket converged");
  }

  const Grid grid = probe_grid(x);
  RunReport report;
  SearchProbe probe;
  probe.x = x;
  probe.rows = runner_.run(grid, &report);
  for (std::size_t i = 0; i < probe.rows.size(); ++i) {
    probe.micros += report.micros[i];
    if (report.origin[i] == kOriginWarm) {
      ++probe.warm;
    } else {
      ++probe.simulated;
    }
  }
  probe.value = objective_(x, probe.rows);
  if (!std::isfinite(probe.value) || probe.value == 0.0) {
    fail(SearchErrorKind::kDegenerate,
         "objective is " + format_value(probe.value) + " at " + axis_.name +
             " = " + format_value(x) +
             "; a sign search needs strictly nonzero finite values (bias "
             "integer objectives by 0.5)");
  }

  probes_.push_back(std::move(probe));
  probe_at_[x] = probes_.size() - 1;
  return probes_.back();
}

int Search::checked_sign(const SearchProbe& probe) const {
  // probe() rejects zero/non-finite values up front, so this is total.
  return sign_of(probe.value);
}

void Search::verify_trail() const {
  std::vector<const SearchProbe*> trail;
  trail.reserve(probes_.size());
  for (const SearchProbe& probe : probes_) trail.push_back(&probe);
  std::sort(trail.begin(), trail.end(),
            [](const SearchProbe* a, const SearchProbe* b) { return a->x < b->x; });
  std::size_t flips = 0;
  for (std::size_t i = 1; i < trail.size(); ++i) {
    if (sign_of(trail[i - 1]->value) != sign_of(trail[i]->value)) ++flips;
  }
  if (flips > 1) {
    std::ostringstream detail;
    detail << "objective sign flips " << flips
           << " times across the probe trail; a bracketed search needs a "
              "single monotone crossing";
    fail(SearchErrorKind::kNonMonotone, detail.str());
  }
}

SearchOutcome Search::bracket_on(const std::vector<double>& lattice) {
  EDC_CHECK(lattice.size() >= 2, "a lattice search needs at least two values");
  for (std::size_t i = 1; i < lattice.size(); ++i) {
    EDC_CHECK(lattice[i - 1] < lattice[i], "lattice must be strictly increasing");
  }

  // Every probe this operation touches, in first-touch order — including
  // memoised probes shared with earlier operations on this Search.
  std::vector<std::size_t> touched;
  const auto touch = [&](double x) -> const SearchProbe& {
    const SearchProbe& result = probe(x);
    const std::size_t index = probe_at_.at(x);
    if (std::find(touched.begin(), touched.end(), index) == touched.end()) {
      touched.push_back(index);
    }
    return result;
  };

  std::size_t lo = 0;
  std::size_t hi = lattice.size() - 1;
  const int sign_lo = checked_sign(touch(lattice[lo]));
  const int sign_hi = checked_sign(touch(lattice[hi]));
  if (sign_lo == sign_hi) {
    fail(SearchErrorKind::kNoBracket,
         "objective has sign " + std::string(sign_lo > 0 ? "+" : "-") +
             " at both lattice endpoints " + axis_.name + " = " +
             format_value(lattice.front()) + " and " +
             format_value(lattice.back()));
  }
  if (options_.direction != 0 && sign_hi != options_.direction) {
    fail(SearchErrorKind::kReversed,
         "bracket crosses " + std::string(sign_lo > 0 ? "+ to -" : "- to +") +
             " but the declared direction is " +
             std::string(options_.direction > 0 ? "rising" : "falling"));
  }

  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (checked_sign(touch(lattice[mid])) == sign_lo) {
      lo = mid;
    } else {
      hi = mid;
    }
    verify_trail();
  }

  if (options_.verify_neighbors) {
    // Certify the cell against its immediate neighbours: a locally noisy
    // flip adjacent to the found cell now lands in the probe trail, where
    // the single-flip invariant catches it.
    if (lo > 0) touch(lattice[lo - 1]);
    if (hi + 1 < lattice.size()) touch(lattice[hi + 1]);
    verify_trail();
  }

  SearchOutcome outcome;
  outcome.lo = lattice[lo];
  outcome.hi = lattice[hi];
  outcome.value_lo = probes_[probe_at_.at(lattice[lo])].value;
  outcome.value_hi = probes_[probe_at_.at(lattice[hi])].value;
  outcome.lo_index = lo;
  outcome.hi_index = hi;
  outcome.direction = sign_hi;
  outcome.probes.reserve(touched.size());
  for (const std::size_t index : touched) outcome.probes.push_back(probes_[index]);
  return outcome;
}

SearchOutcome Search::contract(double lo, double hi, double x_tol) {
  EDC_CHECK(lo < hi, "contract needs lo < hi");
  EDC_CHECK(x_tol > 0.0, "contract needs a positive tolerance");

  std::vector<std::size_t> touched;
  const auto touch = [&](double x) -> const SearchProbe& {
    const SearchProbe& result = probe(x);
    const std::size_t index = probe_at_.at(x);
    if (std::find(touched.begin(), touched.end(), index) == touched.end()) {
      touched.push_back(index);
    }
    return result;
  };

  const int sign_lo = checked_sign(touch(lo));
  const int sign_hi = checked_sign(touch(hi));
  if (sign_lo == sign_hi) {
    fail(SearchErrorKind::kNoBracket,
         "objective has sign " + std::string(sign_lo > 0 ? "+" : "-") +
             " at both ends of [" + format_value(lo) + ", " + format_value(hi) +
             "]");
  }
  if (options_.direction != 0 && sign_hi != options_.direction) {
    fail(SearchErrorKind::kReversed,
         "bracket crosses " + std::string(sign_lo > 0 ? "+ to -" : "- to +") +
             " but the declared direction is " +
             std::string(options_.direction > 0 ? "rising" : "falling"));
  }

  while (hi - lo > x_tol) {
    const double mid = lo + (hi - lo) / 2.0;
    if (!(mid > lo && mid < hi)) break;  // float resolution exhausted
    if (checked_sign(touch(mid)) == sign_lo) {
      lo = mid;
    } else {
      hi = mid;
    }
    verify_trail();
  }

  SearchOutcome outcome;
  outcome.lo = lo;
  outcome.hi = hi;
  outcome.value_lo = probes_[probe_at_.at(lo)].value;
  outcome.value_hi = probes_[probe_at_.at(hi)].value;
  outcome.direction = sign_hi;
  outcome.probes.reserve(touched.size());
  for (const std::size_t index : touched) outcome.probes.push_back(probes_[index]);
  return outcome;
}

std::size_t Search::simulated_points() const noexcept {
  std::size_t n = 0;
  for (const SearchProbe& probe : probes_) n += probe.simulated;
  return n;
}

std::size_t Search::warm_points() const noexcept {
  std::size_t n = 0;
  for (const SearchProbe& probe : probes_) n += probe.warm;
  return n;
}

void Search::fail(SearchErrorKind kind, const std::string& detail) const {
  std::ostringstream message;
  message << "sweep::Search[" << axis_.name << "] "
          << search_error_kind_name(kind) << ": " << detail;
  if (!probes_.empty()) {
    std::vector<const SearchProbe*> trail;
    trail.reserve(probes_.size());
    for (const SearchProbe& probe : probes_) trail.push_back(&probe);
    std::sort(trail.begin(), trail.end(), [](const SearchProbe* a,
                                             const SearchProbe* b) {
      return a->x < b->x;
    });
    message << "; probed";
    for (const SearchProbe* probe : trail) {
      message << " (" << format_value(probe->x) << " -> "
              << format_value(probe->value) << ")";
    }
  }
  throw SearchError(kind, message.str());
}

void append_search_telemetry(const std::string& path, const std::string& name,
                             const Search& search, std::size_t grid_points) {
  bool need_header = true;
  {
    std::ifstream probe_file(path);
    if (probe_file.good() && probe_file.peek() != std::ifstream::traits_type::eof()) {
      need_header = false;
    }
  }
  std::ofstream out(path, std::ios::app);
  if (!out) {
    throw std::runtime_error("cannot open search telemetry file: " + path);
  }
  if (need_header) out << "name,probes,simulated,warm,grid_points\n";
  out << name << ',' << search.probes().size() << ',' << search.simulated_points()
      << ',' << search.warm_points() << ',' << grid_points << '\n';
  if (!out) {
    throw std::runtime_error("failed writing search telemetry file: " + path);
  }
}

}  // namespace edc::sweep
