// Solver-guided design queries: answer inverse questions in O(log)
// simulations instead of O(grid).
//
// The paper's real design questions are inverse — "what is the minimum
// capacitance that survives this trace?", "at what interruption frequency
// does hibernus stop beating QuickRecall?" (Eq 5) — and until now every
// one of them was answered by brute-forcing a dense sweep::Grid. With
// value-semantic specs, a deterministic simulator, and a content-addressed
// cache, a monotone inverse question is a classic root-finding problem: a
// Search brackets the sign change of a scalar objective over one
// continuous spec axis and contracts the candidate interval by bisection,
// simulating O(log(range/tol)) points where the dense grid simulates all
// of them.
//
//   sweep::Search search(base_spec,
//                        {"C (F)", [](spec::SystemSpec& s, double c) {
//                           s.storage.capacitance = c;
//                         }},
//                        [](double, const std::vector<sim::SimResult>& rows) {
//                          return rows[0].mcu.brownouts == 0 ? 1.0 : -1.0;
//                        },
//                        options);
//   const auto outcome = search.contract(1e-6, 1e-3, 1e-6);
//   // outcome.hi is the smallest certified-surviving capacitance
//   // (outcome.lo fails), to within 1 uF — after ~12 simulations.
//
// Probes go through the ordinary Runner/Cache path, so a probed row is
// bit-identical to the row the dense grid would have produced at the same
// spec, every probe is memoised on disk (a warm rerun of the same query
// contracts with ZERO simulations), and per-probe wall times land in the
// same cache entries / timing CSVs as dense-sweep points. Per-probe
// fresh/warm accounting (Runner's origin codes) feeds the search-telemetry
// CSV that tools/bench_gate --points-gate asserts in CI.
//
// Searches can carry a *variant* axis on top of the search axis: the Eq 5
// crossover probes both policies at each candidate frequency and the
// objective sees all variant rows of the probe at once (rows[i] belongs to
// variants[i]).
//
// Failure is loud and structured (SearchError): an objective that is flat
// across the requested bracket, zero/non-finite at a probe, sign-reversed
// against a declared direction, or revealed non-monotone by the probe
// trail throws instead of silently returning a wrong root. Lattice
// searches additionally verify the found cell against its immediate
// neighbours (two extra probes) so a locally noisy flip cannot masquerade
// as the crossover. The refinement loop is the interval-contraction
// discipline of the quiescent engine's ICP planners (and of smtrat-style
// ICP modules) applied to the design axis: keep a certified-sign bracket,
// shrink it until it is below the axis tolerance, re-verify the invariant
// at every step.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "edc/sim/simulator.h"
#include "edc/spec/system_spec.h"
#include "edc/sweep/grid.h"
#include "edc/sweep/runner.h"

namespace edc::sweep {

// ---- structured failure ---------------------------------------------------

enum class SearchErrorKind {
  /// Objective has the same (nonzero) sign at both bracket endpoints —
  /// there is no crossing to find in the requested range.
  kNoBracket,
  /// Objective is exactly zero or non-finite at a probed point; a sign
  /// search cannot classify it. Bias the objective (e.g. "target + 0.5 -
  /// count" for integer metrics) so the crossing is a strict sign change.
  kDegenerate,
  /// The probe trail contradicts a single monotone crossing: sorted along
  /// the axis, the probed signs flip more than once.
  kNonMonotone,
  /// The bracket's sign change runs opposite to the declared
  /// SearchOptions::direction.
  kReversed,
  /// SearchOptions::max_probes exhausted before the bracket converged.
  kBudget,
};

/// Thrown by Search on any of the failure modes above. what() carries the
/// probed evidence (axis positions and objective values).
class SearchError : public std::runtime_error {
 public:
  SearchError(SearchErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  [[nodiscard]] SearchErrorKind kind() const noexcept { return kind_; }

 private:
  SearchErrorKind kind_;
};

/// Human-readable name of a failure kind ("no-bracket", "degenerate", ...).
[[nodiscard]] const char* search_error_kind_name(SearchErrorKind kind) noexcept;

// ---- the query ------------------------------------------------------------

/// The continuous design axis a Search contracts over. `set` writes the
/// candidate value into a copy of the base spec — exactly like a
/// Grid::numeric_axis setter, so a probe's spec is byte-identical to the
/// dense grid point with the same value. `label` formats report/CSV labels
/// (default: "%g").
struct SearchAxis {
  std::string name;
  std::function<void(spec::SystemSpec&, double)> set;
  std::function<std::string(double)> label;
};

/// Scalar objective of one probe: sees the axis value and one SimResult
/// per variant (variant order). Must be a pure function of its arguments.
/// The search locates the strict sign change of this value along the axis.
using SearchObjective =
    std::function<double(double x, const std::vector<sim::SimResult>& rows)>;

/// One memoised probe of the axis.
struct SearchProbe {
  double x = 0.0;
  double value = 0.0;
  /// One row per variant, in variant order — bit-identical to the dense
  /// grid's rows at the same specs.
  std::vector<sim::SimResult> rows;
  std::size_t simulated = 0;  ///< rows simulated fresh by this probe
  std::size_t warm = 0;       ///< rows replayed from the cache
  /// Summed per-row cost (fresh rows: measured wall time; warm rows: the
  /// original cost replayed by the cache), microseconds.
  double micros = 0.0;
};

struct SearchOptions {
  /// Probes run through this Runner configuration; set runner.cache to
  /// memoise probes on disk (warm reruns then contract with 0 simulations).
  RunnerOptions runner;
  /// Hard probe budget; exhausted -> SearchError(kBudget).
  std::size_t max_probes = 128;
  /// Declared objective direction along the axis: +1 rising (negative
  /// below the crossing), -1 falling, 0 infer from the bracket endpoints.
  /// A declared direction turns a reversed-sign objective into a loud
  /// kReversed error instead of a silently mirrored answer.
  int direction = 0;
  /// Lattice searches probe the found cell's immediate neighbours and
  /// re-verify the single-flip invariant (two extra probes, O(1)).
  bool verify_neighbors = true;
};

struct SearchOutcome {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Final certified bracket: value_lo and value_hi have strictly opposite
  /// signs and hi - lo is one lattice cell (bracket_on) or <= the requested
  /// tolerance (contract).
  double lo = 0.0;
  double hi = 0.0;
  double value_lo = 0.0;
  double value_hi = 0.0;
  /// Lattice searches: indices of lo/hi in the input lattice (npos for
  /// continuous contraction).
  std::size_t lo_index = npos;
  std::size_t hi_index = npos;
  /// Certified sign direction: +1 if the objective rises across the
  /// bracket (value_lo < 0 < value_hi), -1 if it falls.
  int direction = 0;
  /// Every distinct probe this operation used, in probe order (shared
  /// endpoint probes from earlier operations on the same Search included).
  std::vector<SearchProbe> probes;

  /// Cold/warm accounting over `probes`.
  [[nodiscard]] std::size_t probe_count() const noexcept { return probes.size(); }
  [[nodiscard]] std::size_t simulated_points() const noexcept;
  [[nodiscard]] std::size_t warm_points() const noexcept;
  [[nodiscard]] double micros_total() const noexcept;
};

class Search {
 public:
  /// A query without variants: the objective sees exactly one row per
  /// probe.
  Search(spec::SystemSpec base, SearchAxis axis, SearchObjective objective,
         SearchOptions options = {});

  /// A query with a variant axis (e.g. the Eq 5 policy pair): each probe
  /// simulates every variant at the candidate axis value, mirroring a
  /// dense Grid with `axis` as the outer and `variants` as the inner axis.
  Search(spec::SystemSpec base, SearchAxis axis, std::string variant_axis_name,
         std::vector<AxisValue> variants, SearchObjective objective,
         SearchOptions options = {});

  /// Simulates (or replays) the probe at axis value `x`. Memoised: probing
  /// the same x twice costs nothing, not even cache I/O. Throws
  /// SearchError(kDegenerate) on a zero/non-finite objective and
  /// kBudget when the probe budget is exhausted.
  const SearchProbe& probe(double x);

  /// Discrete bisection over an ordered lattice of axis values: locates
  /// the adjacent pair (cell) where the objective's sign flips, probing
  /// O(log n) lattice points, then (options.verify_neighbors) certifies
  /// the cell against its neighbours. The lattice must be strictly
  /// increasing with >= 2 values. This is the dense-grid replacement: the
  /// returned cell is provably the dense sweep's crossover cell as long as
  /// the objective is sign-monotone across the lattice — and a violation
  /// among the probed points throws kNonMonotone instead of guessing.
  SearchOutcome bracket_on(const std::vector<double>& lattice);

  /// Continuous interval contraction: verifies [lo, hi] brackets a sign
  /// change, then bisects until the bracket width is <= x_tol (or the
  /// float midpoint degenerates). Returns the final certified bracket.
  SearchOutcome contract(double lo, double hi, double x_tol);

  /// All distinct probes so far, in probe order (across operations).
  [[nodiscard]] const std::vector<SearchProbe>& probes() const noexcept {
    return probes_;
  }
  [[nodiscard]] std::size_t simulated_points() const noexcept;
  [[nodiscard]] std::size_t warm_points() const noexcept;

  /// The dense grid this search replaces (same base spec, same axis
  /// mutators, same variants): its points' specs are byte-identical to
  /// probe specs at equal axis values — the bit-identity contract the
  /// search tests pin down.
  [[nodiscard]] Grid dense_grid(const std::vector<double>& lattice) const;

 private:
  /// Signum with loud degeneracy: +1/-1, throws on 0/NaN/inf.
  int checked_sign(const SearchProbe& probe) const;

  /// Re-verifies the single-flip invariant over the whole probe trail
  /// (sorted by x, signs must change at most once); throws kNonMonotone.
  void verify_trail() const;

  /// Builds the one-value probe grid for axis value x.
  [[nodiscard]] Grid probe_grid(double x) const;

  [[noreturn]] void fail(SearchErrorKind kind, const std::string& detail) const;

  spec::SystemSpec base_;
  SearchAxis axis_;
  std::string variant_axis_name_;
  std::vector<AxisValue> variants_;
  SearchObjective objective_;
  SearchOptions options_;
  Runner runner_;

  std::vector<SearchProbe> probes_;          // probe order
  std::map<double, std::size_t> probe_at_;   // x -> index into probes_
};

// ---- telemetry ------------------------------------------------------------

/// Appends one row of search telemetry to `path` (writing the header when
/// the file is new/empty):
///
///   name,probes,simulated,warm,grid_points
///
/// `grid_points` is the number of points the equivalent dense grid would
/// have simulated (lattice size x variants, or the tolerance-resolution
/// cell count for continuous queries) — the denominator of the O(log) /
/// O(grid) claim. tools/bench_gate --points-csv reads this format and
/// --points-gate asserts `simulated` per named search in CI.
/// Throws std::runtime_error on I/O failure.
void append_search_telemetry(const std::string& path, const std::string& name,
                             const Search& search, std::size_t grid_points);

}  // namespace edc::sweep
