#include "edc/sweep/batch.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <variant>

#include "edc/core/system.h"
#include "edc/sim/batch_kernel.h"
#include "edc/spec/serialize.h"
#include "edc/sweep/cache.h"

namespace edc::sweep {

namespace {

/// One schedulable unit: either a lockstep chunk (>= 1 lane through the
/// kernel) or a single scalar-fallback point.
struct WorkUnit {
  std::vector<BatchPointRef> refs;
  bool batch = false;
};

/// Worker-pool size for `unit_count` units (mirrors Runner::thread_count).
int pool_size(const RunnerOptions& options, std::size_t unit_count) {
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (unit_count < static_cast<std::size_t>(threads)) {
    threads = static_cast<int>(unit_count);
  }
  return threads < 1 ? 1 : threads;
}

}  // namespace

std::vector<double> amortize_lane_micros(double wall_micros, std::size_t lanes) {
  if (lanes == 0) return {};
  const auto total = static_cast<long long>(
      std::llround(wall_micros < 0.0 ? 0.0 : wall_micros));
  const auto n = static_cast<long long>(lanes);
  const long long base = total / n;
  const long long extra = total % n;
  std::vector<double> per_lane(lanes);
  for (std::size_t k = 0; k < lanes; ++k) {
    per_lane[k] =
        static_cast<double>(base + (static_cast<long long>(k) < extra ? 1 : 0));
  }
  return per_lane;
}

std::optional<std::string> batch_group_key(const spec::SystemSpec& spec) {
  if (!spec::has_source(spec.source) ||
      std::holds_alternative<spec::CustomVoltageSource>(spec.source) ||
      std::holds_alternative<spec::CustomPowerSource>(spec.source)) {
    return std::nullopt;
  }
  // Embed the shared-lattice axes in an otherwise default spec so the
  // canonical serializer yields one stable key text per lockstep group.
  spec::SystemSpec key;
  key.source = spec.source;
  key.rectifier = spec.rectifier;
  key.harvester = spec.harvester;
  key.sim.dt = spec.sim.dt;
  key.sim.node_substeps = spec.sim.node_substeps;
  if (!spec::is_cacheable(key)) return std::nullopt;
  return spec::serialize(key);
}

void run_batched(const Grid& grid, const std::vector<BatchPointRef>& points,
                 const RunnerOptions& options, const ScalarPointFn& scalar_point,
                 std::vector<sim::SimResult>& rows, RunReport* report) {
  Cache* cache = options.cache;
  const auto record = [report](std::size_t slot, double cost, char source,
                               char from) {
    if (report == nullptr) return;
    report->micros[slot] = cost;
    report->provenance[slot] = source;
    report->origin[slot] = from;
  };

  // Phase 1 (serial, cheap): resolve warm cache points, partition the rest
  // into lockstep groups / scalar fallbacks. std::map keeps group order —
  // and therefore chunk boundaries and cache stores — deterministic.
  std::map<std::string, std::vector<BatchPointRef>> groups;
  std::vector<BatchPointRef> scalar_refs;
  for (const BatchPointRef& ref : points) {
    const Point point = grid.point(ref.global_index);
    if (cache != nullptr && spec::is_cacheable(point.spec)) {
      if (auto cached = cache->load(spec::serialize(point.spec))) {
        rows[ref.slot] = std::move(cached->result);
        record(ref.slot, cached->micros, cached->provenance, kOriginWarm);
        continue;
      }
    }
    if (auto key = batch_group_key(point.spec)) {
      groups[*key].push_back(ref);
    } else {
      scalar_refs.push_back(ref);
    }
  }

  // Phase 2: chunk each group into <= batch_lanes lanes (balanced, so a
  // trailing chunk is never starved down to one lane unless the group
  // itself is tiny). Singleton groups gain nothing from the kernel — they
  // take the scalar path and keep scalar provenance.
  std::vector<WorkUnit> units;
  const auto lane_cap = static_cast<std::size_t>(
      options.batch_lanes > 1 ? options.batch_lanes : 1);
  for (auto& [key, refs] : groups) {
    (void)key;
    if (refs.size() < 2 || lane_cap < 2) {
      scalar_refs.insert(scalar_refs.end(), refs.begin(), refs.end());
      continue;
    }
    const std::size_t n = refs.size();
    const std::size_t chunks = (n + lane_cap - 1) / lane_cap;
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t size = base + (c < extra ? 1 : 0);
      WorkUnit unit;
      unit.batch = true;
      unit.refs.assign(refs.begin() + static_cast<std::ptrdiff_t>(begin),
                       refs.begin() + static_cast<std::ptrdiff_t>(begin + size));
      units.push_back(std::move(unit));
      begin += size;
    }
  }
  for (const BatchPointRef& ref : scalar_refs) {
    WorkUnit unit;
    unit.refs.push_back(ref);
    units.push_back(std::move(unit));
  }
  if (units.empty()) return;

  // Phase 3: execute the units across the worker pool. Units write
  // disjoint slots, so rows are bit-identical at any thread count.
  const auto execute_unit = [&](const WorkUnit& unit) {
    if (!unit.batch) {
      const BatchPointRef& ref = unit.refs.front();
      const Point point = grid.point(ref.global_index);
      double cost = 0.0;
      char source = kProvenanceScalar;
      char from = kOriginFresh;
      rows[ref.slot] = scalar_point(point, cost, source, from);
      record(ref.slot, cost, source, from);
      return;
    }

    const auto start = std::chrono::steady_clock::now();
    // Instantiate every lane's fresh system, then wire the non-owning lane
    // table (pointers are taken only after the vector stops growing).
    std::vector<core::EnergyDrivenSystem> systems;
    systems.reserve(unit.refs.size());
    for (const BatchPointRef& ref : unit.refs) {
      systems.push_back(spec::instantiate(grid.point(ref.global_index).spec));
    }
    std::vector<sim::BatchLane> lanes;
    lanes.reserve(systems.size());
    for (core::EnergyDrivenSystem& system : systems) {
      sim::BatchLane lane;
      lane.config = system.sim_config();
      lane.node = &system.node();
      lane.driver = &system.driver();
      lane.mcu = &system.mcu();
      lane.governor = system.governor();
      lanes.push_back(lane);
    }
    std::vector<sim::SimResult> results = sim::BatchKernel(std::move(lanes)).run();
    // Amortized lane cost: the chunk's wall time split evenly — the point's
    // marginal cost under *batched* re-execution, which is what a batched
    // shard plan should weigh — with the sub-lane remainder distributed so
    // the recorded costs sum back to the measured wall time (see
    // amortize_lane_micros; a plain wall/n split drifts timing-CSV totals
    // by up to lanes-1 us per chunk). The provenance contract in the header
    // says why these must not silently mix with scalar timings.
    const double wall = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    const std::vector<double> per_lane =
        amortize_lane_micros(wall, unit.refs.size());
    for (std::size_t k = 0; k < unit.refs.size(); ++k) {
      const BatchPointRef& ref = unit.refs[k];
      if (cache != nullptr) {
        const Point point = grid.point(ref.global_index);
        if (spec::is_cacheable(point.spec)) {
          cache->store(spec::serialize(point.spec), results[k], per_lane[k],
                       kProvenanceBatch);
        }
      }
      rows[ref.slot] = std::move(results[k]);
      record(ref.slot, per_lane[k], kProvenanceBatch, kOriginFresh);
    }
  };

  const int threads = pool_size(options, units.size());
  if (threads == 1) {
    for (const WorkUnit& unit : units) execute_unit(unit);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= units.size()) return;
      try {
        execute_unit(units[i]);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace edc::sweep
