// Content-addressed on-disk memoisation of sweep points.
//
// A grid point is a pure function of its spec (spec::instantiate is
// repeatable and the simulator is deterministic), so its SimResult can be
// keyed by the canonical serialization of the spec (which includes the
// SimConfig) and reused across runs: iterating on one grid axis stops
// re-simulating the rest of the grid, and repeated bench invocations with
// an unchanged spec simulate nothing at all.
//
//   sweep::Cache cache("/tmp/edc-cache");
//   sweep::RunnerOptions options;
//   options.cache = &cache;
//   const auto rows = sweep::Runner(options).run(grid);   // warm points load
//   cache.stats();  // {hits, misses, stores, non_cacheable}
//
// On-disk layout (documented in README "Scaling sweeps"):
//
//   <dir>/v<S>-<R>/<hh>/<16-hex-fnv64>.edcres
//
// where S = spec::kSpecFormatVersion, R = sim::kResultFormatVersion, `hh`
// is the first byte of the FNV-1a-64 hash of the canonical spec text, and
// the entry file stores the *full* key text next to the serialized result
// (plus the point's original wall time in microseconds), so a 64-bit hash
// collision degrades to a miss, never a wrong result.
// Bumping either format version changes the directory component, aging out
// stale entries instead of misparsing them.
//
// Entries are written to a temp file and renamed into place, so concurrent
// writers (the Runner's worker threads, or independent shard processes
// pointed at a shared directory) never expose a torn entry. Unreadable
// entries are treated as misses; *corrupt* entries (bytes present but
// undecodable, or a stored result that fails to parse) are self-healed:
// the bad file is quarantined — renamed to <entry>.bad, out of the load /
// fsck / prune namespace — and counted in stats().quarantined, so a bad
// sector can't keep masquerading as a cache entry and pruning can't
// resurrect it. A valid entry whose embedded key differs (a 64-bit hash
// collision) is NOT corruption and is left in place. Specs carrying opaque
// factory callbacks are non-cacheable (see spec::non_cacheable_reason) and
// are always re-simulated; the Runner counts them in stats().non_cacheable.
//
// For chaos testing, set_fault_injector() threads a sweep::FaultInjector
// through every I/O seam (read / truncated read / write / rename, plus the
// process-kill crash points fork-based crash tests use); injected faults
// exercise exactly the degradation paths above.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "edc/sim/simulator.h"

namespace edc::sweep {

class FaultInjector;

struct CacheStats {
  std::uint64_t hits = 0;           ///< load() found a valid entry
  std::uint64_t misses = 0;         ///< load() found nothing usable
  std::uint64_t stores = 0;         ///< store() wrote an entry
  std::uint64_t non_cacheable = 0;  ///< points skipped (opaque callbacks)
  std::uint64_t quarantined = 0;    ///< corrupt entries renamed to .bad
};

/// A cache hit: the memoised result plus the wall time the original
/// simulation of the point took (microseconds; 0 when unrecorded). The
/// cost survives cache round trips so warm re-runs can still feed
/// cost-weighted shard scheduling.
struct CachedPoint {
  sim::SimResult result;
  double micros = 0.0;
  /// Which execution path produced the stored result: 's' = scalar
  /// simulator, 'b' = batched SoA kernel (see sweep/batch.h). The two are
  /// bit-identical by contract, but shard-plan/timing consumers need the
  /// distinction because batch wall times are amortized over a lane group —
  /// warm hits replay the original provenance so a re-run cannot silently
  /// relabel its timings. Entries written before the field default to 's'
  /// (the batch path did not exist then).
  char provenance = 's';
};

class Cache {
 public:
  /// Anchors the cache at `directory` (created lazily on first store).
  explicit Cache(std::filesystem::path directory);

  /// Looks up the result stored under the canonical spec text `key_text`
  /// (as produced by spec::serialize). Thread-safe. A hit refreshes the
  /// entry's mtime (best-effort) so `sweep_cache prune` evicts in true
  /// least-recently-*used* order, not written order.
  [[nodiscard]] std::optional<CachedPoint> load(const std::string& key_text) const;

  /// Stores `result` under `key_text`, atomically (temp file + rename),
  /// together with the wall time the simulation took (microseconds) and
  /// the execution-path provenance ('s' scalar / 'b' batch).
  /// Thread-safe; concurrent stores of the same key are harmless.
  void store(const std::string& key_text, const sim::SimResult& result,
             double micros = 0.0, char provenance = 's') const;

  /// Integrity check of one on-disk entry of the *current* format version
  /// (the `sweep_cache fsck` core): decodes the blocks, verifies the
  /// filename matches the FNV-1a-64 of the embedded key text, and parses
  /// the stored result. Returns an empty string when healthy, else a
  /// human-readable reason. Entries written by other format versions do
  /// not decode here — callers must scope themselves to the current
  /// versioned_directory() (as the CLI does) rather than judge them.
  [[nodiscard]] static std::string fsck_entry(const std::filesystem::path& path);

  /// Quarantines one on-disk entry: renames `path` to `path + ".bad"`,
  /// taking it out of the load / fsck / prune namespace while preserving
  /// the bytes for post-mortem. Returns true when the rename succeeded
  /// (best-effort; a concurrent quarantine of the same entry is fine).
  /// load() calls this automatically on corrupt entries; `sweep_cache
  /// fsck --quarantine` applies it to everything fsck flags.
  static bool quarantine_entry(const std::filesystem::path& path);

  /// Threads a fault injector through every I/O seam (nullptr to detach).
  /// Not owned; must outlive the Cache. Not thread-safe against concurrent
  /// load/store — wire it up before handing the cache to workers.
  void set_fault_injector(const FaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }

  /// Books a point that could not participate (opaque factory callbacks).
  void note_non_cacheable() const noexcept { ++non_cacheable_; }

  [[nodiscard]] CacheStats stats() const noexcept;
  void reset_stats() const noexcept;

  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return dir_;
  }

  /// The versioned directory entries currently live in (<dir>/v<S>-<R>).
  [[nodiscard]] std::filesystem::path versioned_directory() const;

  /// Full path of the entry a given canonical key text maps to.
  [[nodiscard]] std::filesystem::path entry_path(const std::string& key_text) const;

 private:
  std::filesystem::path dir_;
  const FaultInjector* fault_injector_ = nullptr;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> stores_{0};
  mutable std::atomic<std::uint64_t> non_cacheable_{0};
  mutable std::atomic<std::uint64_t> quarantined_{0};
};

}  // namespace edc::sweep
