// Fault-tolerant sweep service: a long-lived daemon over the
// content-addressed sweep cache (the "millions of users" shape of the
// ROADMAP — the cache becomes a shared store many frontends hit, and
// sweep_fanout.sh its backfill path).
//
// Layering:
//
//   Engine   protocol-agnostic request executor: warm hits straight from
//            sweep::Cache (no simulator), single-flight dedup of in-flight
//            identical points (by spec_hash), cold misses batched through
//            sweep::Runner, per-request deadlines, a watchdog that
//            requeues points stuck past point_timeout_ms, worker-death
//            retries, and graceful degradation on every cache fault.
//   Service  socket front-end: an accept loop feeding a *bounded*
//            connection queue drained by a fixed worker pool. A full
//            queue answers a loud `busy` frame immediately — backpressure
//            is explicit, the queue can never grow without bound.
//
// Robustness contract (tested in tests/serve_test.cpp and the
// `sweep_served smoke` ctest under injected chaos):
//
//  * Responses are byte-identical to a clean serial Runner::run of the
//    same points — warm or cold, faulted or not. The cache stores
//    canonical result text and the simulator is deterministic, so every
//    degradation path (quarantine -> resimulate, retry after a killed
//    worker, watchdog requeue) converges on the same bytes.
//  * Single-flight: concurrent identical cold points simulate once; the
//    followers wait on the owner's flight and reuse its row ("merged").
//    A follower never waits past point_timeout_ms: the watchdog marks
//    stale flights stuck, and a stuck/failed flight is requeued — the
//    follower simulates the point itself rather than hanging.
//  * Degradation: an unreadable/corrupt/unwritable cache never fails a
//    request — corrupt entries are quarantined (Cache self-healing) and
//    the point falls back to live simulation.
//  * Deadlines: a request past its deadline_ms answers a loud error
//    instead of occupying a worker forever.
//
// All counters are exposed via stats() so chaos tests can assert the
// storm actually stormed (nonzero quarantines/retries/requeues) and the
// warm path simulated zero points.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "edc/serve/protocol.h"
#include "edc/serve/socket.h"
#include "edc/sweep/cache.h"
#include "edc/sweep/fault_injector.h"
#include "edc/sweep/runner.h"

namespace edc::serve {

struct ServiceOptions {
  /// Shared result store; optional (nullptr = simulate everything) but the
  /// warm-hit path obviously needs it. Not owned.
  sweep::Cache* cache = nullptr;
  /// Chaos source threaded through the runner seam (wire the same injector
  /// into the cache via Cache::set_fault_injector). Not owned.
  const sweep::FaultInjector* fault_injector = nullptr;
  /// Connection-handling workers (concurrent requests in service).
  int request_workers = 2;
  /// Runner threads per request's cold batch (0 = hardware concurrency).
  int sim_threads = 1;
  /// Accepted-but-unhandled connections beyond this answer `busy`.
  std::size_t queue_capacity = 16;
  /// Single-flight wait cap: a follower stuck on another request's
  /// simulation past this requeues the point itself, and the watchdog
  /// flags the flight stuck for everyone else.
  double point_timeout_ms = 2000.0;
  /// Deadline applied to requests that carry none (0 = unlimited).
  double default_deadline_ms = 0.0;
  /// Simulation attempts per point before the request reports an error
  /// (worker deaths and injected kills consume attempts).
  int max_attempts = 4;
};

struct ServiceStats {
  // Request-level.
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;           ///< backpressure: queue-full rejections
  std::uint64_t errors = 0;         ///< malformed/deadline/failed requests
  std::uint64_t deadline_expired = 0;
  // Point-level (how each requested point was resolved).
  std::uint64_t points = 0;
  std::uint64_t warm_hits = 0;      ///< answered from cache, no simulator
  std::uint64_t simulated = 0;      ///< simulated by the owning request
  std::uint64_t merged = 0;         ///< reused another request's flight
  std::uint64_t requeued = 0;       ///< watchdog/stuck fallback re-sims
  std::uint64_t retries = 0;        ///< extra simulation attempts
  // Cache health (mirrors cache->stats() at sampling time).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stores = 0;
  std::uint64_t cache_quarantined = 0;
  // Request latency (milliseconds; over the sliding sample window).
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Renders stats as the protocol's "key value" lines (the `stats` op
/// payload) — parseable with canon::parse_* per line.
[[nodiscard]] std::string stats_text(const ServiceStats& stats);

class Engine {
 public:
  explicit Engine(ServiceOptions options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes one `run` request. Thread-safe; called concurrently by the
  /// Service workers (and directly by in-process embedders/tests).
  [[nodiscard]] Response execute(const Request& request);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

  /// Service-level tallies the Engine owns so stats() is one-stop.
  void note_request_outcome(Response::Status status);
  void note_busy() { ++busy_; }
  void note_latency(double millis);

 private:
  using Clock = std::chrono::steady_clock;

  /// One in-flight cold point (single-flight table entry).
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    bool stuck = false;  ///< watchdog: past point_timeout_ms
    std::string row;     ///< canonical result text when done && !failed
    Clock::time_point started;
  };

  /// Resolves one point by direct simulation (the follower-requeue and
  /// last-ditch path); retries per max_attempts. Returns false when every
  /// attempt failed.
  [[nodiscard]] bool simulate_single(const std::string& point_text,
                                     std::string* row);

  void watchdog_loop();

  ServiceOptions options_;
  // Single-flight table: spec_hash -> shared flight state.
  std::mutex flights_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> flights_;
  // Watchdog.
  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  // Latency samples (sliding window, mutex-guarded).
  mutable std::mutex latency_mutex_;
  std::deque<double> latency_ms_;
  // Counters.
  std::atomic<std::uint64_t> requests_{0}, ok_{0}, busy_{0}, errors_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> points_{0}, warm_hits_{0}, simulated_{0};
  std::atomic<std::uint64_t> merged_{0}, requeued_{0}, retries_{0};
};

/// The daemon: listener + bounded queue + worker pool around an Engine.
class Service {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()). Throws
  /// std::runtime_error when the bind fails.
  Service(ServiceOptions options, std::uint16_t port);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Starts the accept loop and workers (idempotent).
  void start();
  /// Signals shutdown (safe from any thread, including a worker serving a
  /// `shutdown` op); does not join.
  void request_stop();
  /// Blocks until the service has stopped and joins all threads.
  void wait();

  [[nodiscard]] ServiceStats stats() const { return engine_.stats(); }
  [[nodiscard]] Engine& engine() noexcept { return engine_; }

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(Socket socket);

  ServiceOptions options_;
  Engine engine_;
  Listener listener_;
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Socket> queue_;
};

/// One-shot client call: connect to 127.0.0.1:`port`, send `request`,
/// read the response. nullopt (with `*error`) on transport failure.
[[nodiscard]] std::optional<Response> call_service(std::uint16_t port,
                                                   const Request& request,
                                                   std::string* error);

}  // namespace edc::serve
