#include "edc/serve/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace edc::serve {

namespace {

/// Lines longer than this are a protocol violation, not a buffering
/// challenge (header lines are tens of bytes; blocks are length-prefixed).
constexpr std::size_t kMaxLineBytes = 64 * 1024;
constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("serve: socket() failed");
  Socket sock(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error(std::string("serve: bind(127.0.0.1:") +
                             std::to_string(port) +
                             ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    throw std::runtime_error(std::string("serve: listen() failed: ") +
                             std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw std::runtime_error("serve: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  sock_ = std::move(sock);
}

std::optional<Socket> Listener::accept() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // EBADF/EINVAL after shutdown(), or a persistent failure: stop.
    return std::nullopt;
  }
}

void Listener::shutdown() noexcept {
  if (sock_.valid()) {
    // shutdown() wakes a blocked accept(); keep the fd alive until the
    // Listener dies so a racing accept never reads a recycled fd.
    ::shutdown(sock_.fd(), SHUT_RDWR);
  }
}

Socket connect_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket{};
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Socket{};
  }
  return sock;
}

bool Stream::fill() {
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  char chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or error
  }
}

std::optional<std::string> Stream::read_line() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      return line;
    }
    if (buffer_.size() - pos_ > kMaxLineBytes) return std::nullopt;
    if (!fill()) return std::nullopt;
  }
}

bool Stream::read_exact(char* dst, std::size_t n) {
  std::size_t copied = 0;
  while (copied < n) {
    if (pos_ >= buffer_.size() && !fill()) return false;
    const std::size_t take = std::min(n - copied, buffer_.size() - pos_);
    std::memcpy(dst + copied, buffer_.data() + pos_, take);
    pos_ += take;
    copied += take;
  }
  return true;
}

bool Stream::write_all(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that closed early yields EPIPE, not a
    // process-killing SIGPIPE.
    const ssize_t n = ::send(socket_.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace edc::serve
