#include "edc/serve/protocol.h"

#include <cstring>

#include "edc/common/canon.h"

namespace edc::serve {

namespace {

const char* op_name(Request::Op op) {
  switch (op) {
    case Request::Op::kRun: return "run";
    case Request::Op::kStats: return "stats";
    case Request::Op::kPing: return "ping";
    case Request::Op::kShutdown: return "shutdown";
  }
  return "run";
}

const char* status_name(Response::Status status) {
  switch (status) {
    case Response::Status::kOk: return "ok";
    case Response::Status::kBusy: return "busy";
    case Response::Status::kError: return "error";
  }
  return "error";
}

void append_block(std::string& out, const char* key, const std::string& bytes) {
  out += key;
  out += ' ';
  out += std::to_string(bytes.size());
  out += '\n';
  out += bytes;
}

bool fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

/// Reads `key <N>\n` + N raw bytes; false (with reason) on mismatch.
bool read_block(ByteSource& in, const char* key, std::string* block,
                std::string* error) {
  const auto header = in.read_line();
  const std::string prefix = std::string(key) + ' ';
  if (!header || header->rfind(prefix, 0) != 0) {
    return fail(error, std::string("expected '") + key + " <bytes>' header");
  }
  std::size_t length = 0;
  try {
    length = static_cast<std::size_t>(
        canon::parse_u64(std::string_view(*header).substr(prefix.size())));
  } catch (const canon::FormatError&) {
    return fail(error, std::string("malformed ") + key + " length");
  }
  if (length > kMaxBlockBytes) {
    return fail(error, std::string(key) + " block exceeds " +
                           std::to_string(kMaxBlockBytes) + " bytes");
  }
  block->resize(length);
  if (length > 0 && !in.read_exact(block->data(), length)) {
    return fail(error, std::string("short read inside ") + key + " block");
  }
  return true;
}

bool read_magic_line(ByteSource& in, std::string* error) {
  const auto magic = in.read_line();
  if (!magic || *magic != kFrameMagic) {
    return fail(error, "bad frame magic (want '" + std::string(kFrameMagic) +
                           "')");
  }
  return true;
}

bool read_end_line(ByteSource& in, std::string* error) {
  const auto end = in.read_line();
  if (!end || *end != "end") return fail(error, "missing 'end' trailer");
  return true;
}

}  // namespace

std::optional<std::string> StringSource::read_line() {
  const std::size_t nl = bytes_.find('\n', pos_);
  if (nl == std::string::npos) return std::nullopt;
  std::string line = bytes_.substr(pos_, nl - pos_);
  pos_ = nl + 1;
  return line;
}

bool StringSource::read_exact(char* dst, std::size_t n) {
  if (bytes_.size() - pos_ < n) return false;
  std::memcpy(dst, bytes_.data() + pos_, n);
  pos_ += n;
  return true;
}

std::string encode_request(const Request& request) {
  std::string out;
  out += kFrameMagic;
  out += '\n';
  out += "op ";
  out += op_name(request.op);
  out += '\n';
  if (request.op == Request::Op::kRun) {
    if (request.deadline_ms > 0.0) {
      out += "deadline_ms " + canon::double_text(request.deadline_ms) + '\n';
    }
    out += "points " + std::to_string(request.points.size()) + '\n';
    for (const std::string& point : request.points) {
      append_block(out, "point_bytes", point);
    }
  }
  out += "end\n";
  return out;
}

std::string encode_response(const Response& response) {
  std::string out;
  out += kFrameMagic;
  out += '\n';
  out += "status ";
  out += status_name(response.status);
  out += '\n';
  if (response.status == Response::Status::kError) {
    out += "error " + canon::quote(response.error) + '\n';
  }
  if (response.status == Response::Status::kOk) {
    out += "rows " + std::to_string(response.rows.size()) + '\n';
    for (const std::string& row : response.rows) {
      append_block(out, "row_bytes", row);
    }
    append_block(out, "stats_bytes", response.stats_text);
  }
  out += "end\n";
  return out;
}

std::optional<Request> read_request(ByteSource& in, std::string* error) {
  if (!read_magic_line(in, error)) return std::nullopt;

  const auto op_line = in.read_line();
  if (!op_line || op_line->rfind("op ", 0) != 0) {
    fail(error, "expected 'op <run|stats|ping|shutdown>'");
    return std::nullopt;
  }
  Request request;
  const std::string_view op = std::string_view(*op_line).substr(3);
  if (op == "run") {
    request.op = Request::Op::kRun;
  } else if (op == "stats") {
    request.op = Request::Op::kStats;
  } else if (op == "ping") {
    request.op = Request::Op::kPing;
  } else if (op == "shutdown") {
    request.op = Request::Op::kShutdown;
  } else {
    fail(error, "unknown op '" + std::string(op) + "'");
    return std::nullopt;
  }

  if (request.op == Request::Op::kRun) {
    auto line = in.read_line();
    if (line && line->rfind("deadline_ms ", 0) == 0) {
      try {
        request.deadline_ms =
            canon::parse_double(std::string_view(*line).substr(12));
      } catch (const canon::FormatError&) {
        fail(error, "malformed deadline_ms");
        return std::nullopt;
      }
      if (!(request.deadline_ms > 0.0)) {
        fail(error, "deadline_ms must be positive");
        return std::nullopt;
      }
      line = in.read_line();
    }
    if (!line || line->rfind("points ", 0) != 0) {
      fail(error, "expected 'points <count>'");
      return std::nullopt;
    }
    std::size_t count = 0;
    try {
      count = static_cast<std::size_t>(
          canon::parse_u64(std::string_view(*line).substr(7)));
    } catch (const canon::FormatError&) {
      fail(error, "malformed points count");
      return std::nullopt;
    }
    if (count > kMaxPoints) {
      fail(error, "points count exceeds " + std::to_string(kMaxPoints));
      return std::nullopt;
    }
    request.points.resize(count);
    for (std::string& point : request.points) {
      if (!read_block(in, "point_bytes", &point, error)) return std::nullopt;
    }
  }

  if (!read_end_line(in, error)) return std::nullopt;
  return request;
}

std::optional<Response> read_response(ByteSource& in, std::string* error) {
  if (!read_magic_line(in, error)) return std::nullopt;

  const auto status_line = in.read_line();
  if (!status_line || status_line->rfind("status ", 0) != 0) {
    fail(error, "expected 'status <ok|busy|error>'");
    return std::nullopt;
  }
  Response response;
  const std::string_view status = std::string_view(*status_line).substr(7);
  if (status == "ok") {
    response.status = Response::Status::kOk;
  } else if (status == "busy") {
    response.status = Response::Status::kBusy;
  } else if (status == "error") {
    response.status = Response::Status::kError;
  } else {
    fail(error, "unknown status '" + std::string(status) + "'");
    return std::nullopt;
  }

  if (response.status == Response::Status::kError) {
    const auto error_line = in.read_line();
    if (!error_line || error_line->rfind("error ", 0) != 0) {
      fail(error, "expected 'error <reason>'");
      return std::nullopt;
    }
    try {
      response.error = canon::unquote(std::string_view(*error_line).substr(6));
    } catch (const canon::FormatError&) {
      fail(error, "malformed error quoting");
      return std::nullopt;
    }
  }

  if (response.status == Response::Status::kOk) {
    const auto rows_line = in.read_line();
    if (!rows_line || rows_line->rfind("rows ", 0) != 0) {
      fail(error, "expected 'rows <count>'");
      return std::nullopt;
    }
    std::size_t count = 0;
    try {
      count = static_cast<std::size_t>(
          canon::parse_u64(std::string_view(*rows_line).substr(5)));
    } catch (const canon::FormatError&) {
      fail(error, "malformed rows count");
      return std::nullopt;
    }
    if (count > kMaxPoints) {
      fail(error, "rows count exceeds " + std::to_string(kMaxPoints));
      return std::nullopt;
    }
    response.rows.resize(count);
    for (std::string& row : response.rows) {
      if (!read_block(in, "row_bytes", &row, error)) return std::nullopt;
    }
    if (!read_block(in, "stats_bytes", &response.stats_text, error)) {
      return std::nullopt;
    }
  }

  if (!read_end_line(in, error)) return std::nullopt;
  return response;
}

}  // namespace edc::serve
