#include "edc/serve/service.h"

#include <algorithm>
#include <exception>
#include <functional>
#include <utility>

#include "edc/common/canon.h"
#include "edc/sim/result_io.h"
#include "edc/spec/serialize.h"
#include "edc/sweep/grid.h"

namespace edc::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kLatencyWindow = 4096;

/// A grid whose points are exactly the parsed specs at `indices`, in
/// order: one "served_point" axis, each value substituting the whole
/// spec. Row j of Runner::run then answers request point indices[j].
sweep::Grid grid_of(const std::vector<spec::SystemSpec>& parsed,
                    const std::vector<std::size_t>& indices) {
  sweep::Grid grid(parsed[indices[0]]);
  if (indices.size() > 1) {
    std::vector<sweep::AxisValue> values;
    values.reserve(indices.size());
    for (const std::size_t i : indices) {
      spec::SystemSpec spec = parsed[i];
      values.push_back({std::to_string(i), [spec = std::move(spec)](
                                               spec::SystemSpec& s) { s = spec; }});
    }
    grid.axis("served_point", std::move(values));
  }
  return grid;
}

}  // namespace

std::string stats_text(const ServiceStats& stats) {
  std::string out;
  const auto line = [&out](const char* key, std::uint64_t value) {
    out += key;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  line("requests", stats.requests);
  line("ok", stats.ok);
  line("busy", stats.busy);
  line("errors", stats.errors);
  line("deadline_expired", stats.deadline_expired);
  line("points", stats.points);
  line("warm_hits", stats.warm_hits);
  line("simulated", stats.simulated);
  line("merged", stats.merged);
  line("requeued", stats.requeued);
  line("retries", stats.retries);
  line("cache_hits", stats.cache_hits);
  line("cache_misses", stats.cache_misses);
  line("cache_stores", stats.cache_stores);
  line("cache_quarantined", stats.cache_quarantined);
  out += "p50_ms " + canon::double_text(stats.p50_ms) + '\n';
  out += "p99_ms " + canon::double_text(stats.p99_ms) + '\n';
  return out;
}

// ---- Engine ----------------------------------------------------------------

Engine::Engine(ServiceOptions options) : options_(options) {
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

Engine::~Engine() {
  {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void Engine::watchdog_loop() {
  const auto timeout =
      std::chrono::duration<double, std::milli>(options_.point_timeout_ms);
  const auto period = std::chrono::duration<double, std::milli>(
      std::max(options_.point_timeout_ms / 4.0, 1.0));
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, period, [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;
    const auto now = Clock::now();
    std::vector<std::shared_ptr<Flight>> stale;
    {
      const std::lock_guard<std::mutex> flights_lock(flights_mutex_);
      for (const auto& [hash, flight] : flights_) {
        if (now - flight->started > timeout) stale.push_back(flight);
      }
    }
    for (const auto& flight : stale) {
      const std::lock_guard<std::mutex> flight_lock(flight->mutex);
      if (!flight->done && !flight->stuck) {
        // Cancel the wait, not the thread: C++ threads cannot be killed
        // safely, so "cancelling" a stuck point means releasing every
        // follower to requeue it while the stuck worker's eventual result
        // is simply discarded (its cache store is harmless — identical
        // bytes by determinism).
        flight->stuck = true;
        flight->cv.notify_all();
      }
    }
  }
}

bool Engine::simulate_single(const std::string& point_text, std::string* row) {
  sweep::RunnerOptions runner_options;
  runner_options.cache = options_.cache;
  runner_options.fault_injector = options_.fault_injector;
  runner_options.threads = 1;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (attempt > 1) ++retries_;
    try {
      std::vector<spec::SystemSpec> parsed{spec::parse_spec(point_text)};
      const auto results =
          sweep::Runner(runner_options).run(grid_of(parsed, {0}));
      *row = sim::serialize_result(results.at(0));
      return true;
    } catch (const std::exception&) {
      // Killed worker / injected fault: retry. The cache may already hold
      // the row by now (another worker finished it), which the next
      // Runner pass picks up as a warm hit.
      continue;
    }
  }
  return false;
}

Response Engine::execute(const Request& request) {
  const auto start = Clock::now();
  ++requests_;
  const auto fail = [this](const std::string& reason) {
    ++errors_;
    Response response;
    response.status = Response::Status::kError;
    response.error = reason;
    return response;
  };
  if (request.op != Request::Op::kRun) {
    return fail("engine only executes 'run' requests");
  }
  if (request.points.size() > kMaxPoints) {
    return fail("request exceeds " + std::to_string(kMaxPoints) + " points");
  }

  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  const bool has_deadline = deadline_ms > 0.0;
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(deadline_ms));
  const auto expired = [has_deadline, deadline] {
    return has_deadline && Clock::now() >= deadline;
  };

  const std::size_t count = request.points.size();
  points_ += count;

  // Strict up-front validation: a request carrying bytes that are not a
  // canonical spec never reaches a worker thread.
  std::vector<spec::SystemSpec> parsed;
  parsed.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    try {
      parsed.push_back(spec::parse_spec(request.points[i]));
    } catch (const std::exception& e) {
      return fail("point " + std::to_string(i) +
                  " is not canonical spec text: " + e.what());
    }
  }

  std::vector<std::string> rows(count);
  std::vector<bool> resolved(count, false);
  std::uint64_t warm_local = 0, simulated_local = 0, merged_local = 0,
                requeued_local = 0;

  // Phase 1: warm hits straight from the cache — the simulator is never
  // touched for them. A corrupt entry quarantines inside load() and the
  // point falls through to the cold path.
  if (options_.cache != nullptr) {
    for (std::size_t i = 0; i < count; ++i) {
      if (auto hit = options_.cache->load(request.points[i])) {
        rows[i] = sim::serialize_result(hit->result);
        resolved[i] = true;
        ++warm_local;
      }
    }
  }

  // Phase 2: claim single-flight ownership of the cold points. The first
  // occurrence of a hash in this request owns (or follows another
  // request's flight); repeats within the request copy the first's row.
  struct FollowerRef {
    std::size_t index;
    std::shared_ptr<Flight> flight;
  };
  std::vector<std::size_t> owned;
  std::vector<FollowerRef> followers;
  std::vector<std::pair<std::size_t, std::size_t>> duplicates;  // (i, first)
  std::unordered_map<std::uint64_t, std::size_t> first_occurrence;
  std::unordered_map<std::size_t, std::shared_ptr<Flight>> our_flights;
  std::vector<std::uint64_t> hashes(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    if (resolved[i]) continue;
    hashes[i] = spec::fnv1a64(request.points[i]);
    const auto [it, fresh] = first_occurrence.try_emplace(hashes[i], i);
    if (!fresh) {
      duplicates.emplace_back(i, it->second);
      continue;
    }
    const std::lock_guard<std::mutex> lock(flights_mutex_);
    const auto flight_it = flights_.find(hashes[i]);
    if (flight_it != flights_.end()) {
      followers.push_back({i, flight_it->second});
    } else {
      auto flight = std::make_shared<Flight>();
      flight->started = Clock::now();
      flights_[hashes[i]] = flight;
      our_flights[i] = flight;
      owned.push_back(i);
    }
  }

  // Fulfils an owned point's flight and removes it from the table; also
  // the failure path (scope guard below), so a dying request can never
  // leave a zombie flight that blocks followers forever.
  const auto settle_flight = [this, &our_flights, &hashes](std::size_t i,
                                                          const std::string* row) {
    const auto it = our_flights.find(i);
    if (it == our_flights.end()) return;
    {
      const std::lock_guard<std::mutex> lock(it->second->mutex);
      it->second->done = true;
      if (row != nullptr) {
        it->second->row = *row;
      } else {
        it->second->failed = true;
      }
      it->second->cv.notify_all();
    }
    {
      const std::lock_guard<std::mutex> lock(flights_mutex_);
      const auto table_it = flights_.find(hashes[i]);
      if (table_it != flights_.end() && table_it->second == it->second) {
        flights_.erase(table_it);
      }
    }
    our_flights.erase(it);
  };
  struct FlightGuard {
    const std::function<void(std::size_t, const std::string*)>& settle;
    std::unordered_map<std::size_t, std::shared_ptr<Flight>>& flights;
    ~FlightGuard() {
      std::vector<std::size_t> open;
      open.reserve(flights.size());
      for (const auto& [i, flight] : flights) open.push_back(i);
      for (const std::size_t i : open) settle(i, nullptr);
    }
  };
  const std::function<void(std::size_t, const std::string*)> settle_fn =
      settle_flight;
  FlightGuard guard{settle_fn, our_flights};

  const auto commit_tallies = [&] {
    warm_hits_ += warm_local;
    simulated_ += simulated_local;
    merged_ += merged_local;
    requeued_ += requeued_local;
    note_latency(std::chrono::duration<double, std::milli>(Clock::now() - start)
                     .count());
  };
  const auto fail_request = [&](const std::string& reason, bool deadline_hit) {
    if (deadline_hit) ++deadline_expired_;
    commit_tallies();
    return fail(reason);
  };

  // Phase 3: simulate the owned cold points, batched through the Runner
  // (cache + fault injector + its thread pool). A thrown worker death
  // fails the whole batch attempt, but every point that finished first is
  // already in the cache — harvest those, then retry the rest.
  if (!owned.empty()) {
    sweep::RunnerOptions runner_options;
    runner_options.cache = options_.cache;
    runner_options.fault_injector = options_.fault_injector;
    runner_options.threads = options_.sim_threads;
    std::vector<std::size_t> remaining = owned;
    for (int attempt = 1; !remaining.empty(); ++attempt) {
      if (expired()) {
        return fail_request("deadline exceeded while simulating cold points",
                            true);
      }
      if (attempt > options_.max_attempts) {
        return fail_request(
            "cold point failed after " + std::to_string(options_.max_attempts) +
                " simulation attempts",
            false);
      }
      if (attempt > 1) retries_ += remaining.size();
      try {
        const auto results =
            sweep::Runner(runner_options).run(grid_of(parsed, remaining));
        for (std::size_t j = 0; j < remaining.size(); ++j) {
          const std::size_t i = remaining[j];
          rows[i] = sim::serialize_result(results[j]);
          resolved[i] = true;
          ++simulated_local;
          settle_flight(i, &rows[i]);
        }
        remaining.clear();
      } catch (const std::exception&) {
        std::vector<std::size_t> rest;
        for (const std::size_t i : remaining) {
          std::optional<sweep::CachedPoint> hit;
          if (options_.cache != nullptr) {
            hit = options_.cache->load(request.points[i]);
          }
          if (hit) {
            rows[i] = sim::serialize_result(hit->result);
            resolved[i] = true;
            ++simulated_local;
            settle_flight(i, &rows[i]);
          } else {
            rest.push_back(i);
          }
        }
        remaining = std::move(rest);
      }
    }
  }

  // Phase 4: followers wait on the owning request's flight — but never
  // past point_timeout_ms. A done flight merges its row; a stuck, failed
  // or timed-out one is requeued: the follower simulates the point itself
  // instead of hanging on a worker that may never answer.
  const auto point_timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.point_timeout_ms));
  for (const auto& [i, flight] : followers) {
    if (expired()) {
      return fail_request("deadline exceeded while waiting on in-flight points",
                          true);
    }
    bool merged_row = false;
    {
      std::unique_lock<std::mutex> lock(flight->mutex);
      auto wait_until = Clock::now() + point_timeout;
      if (has_deadline && deadline < wait_until) wait_until = deadline;
      flight->cv.wait_until(lock, wait_until, [&flight] {
        return flight->done || flight->stuck;
      });
      if (flight->done && !flight->failed) {
        rows[i] = flight->row;
        merged_row = true;
      }
    }
    if (merged_row) {
      resolved[i] = true;
      ++merged_local;
      continue;
    }
    // Stuck / failed / timed out: requeue on this thread.
    ++requeued_local;
    if (expired()) {
      return fail_request("deadline exceeded while requeuing a stuck point",
                          true);
    }
    if (!simulate_single(request.points[i], &rows[i])) {
      return fail_request("requeued point failed after " +
                              std::to_string(options_.max_attempts) +
                              " simulation attempts",
                          false);
    }
    resolved[i] = true;
  }

  // Intra-request duplicates copy their first occurrence's row.
  for (const auto& [i, first] : duplicates) {
    rows[i] = rows[first];
    resolved[i] = true;
    ++merged_local;
  }

  for (std::size_t i = 0; i < count; ++i) {
    if (!resolved[i]) {
      return fail_request("internal: point " + std::to_string(i) +
                              " left unresolved",
                          false);
    }
  }

  commit_tallies();
  ++ok_;
  Response response;
  response.status = Response::Status::kOk;
  response.rows = std::move(rows);
  response.stats_text = "warm " + std::to_string(warm_local) + "\nsimulated " +
                        std::to_string(simulated_local) + "\nmerged " +
                        std::to_string(merged_local) + "\nrequeued " +
                        std::to_string(requeued_local) + "\n";
  return response;
}

void Engine::note_request_outcome(Response::Status status) {
  ++requests_;
  switch (status) {
    case Response::Status::kOk: ++ok_; break;
    case Response::Status::kBusy: ++busy_; break;
    case Response::Status::kError: ++errors_; break;
  }
}

void Engine::note_latency(double millis) {
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_ms_.push_back(millis);
  if (latency_ms_.size() > kLatencyWindow) latency_ms_.pop_front();
}

ServiceStats Engine::stats() const {
  ServiceStats stats;
  stats.requests = requests_.load();
  stats.ok = ok_.load();
  stats.busy = busy_.load();
  stats.errors = errors_.load();
  stats.deadline_expired = deadline_expired_.load();
  stats.points = points_.load();
  stats.warm_hits = warm_hits_.load();
  stats.simulated = simulated_.load();
  stats.merged = merged_.load();
  stats.requeued = requeued_.load();
  stats.retries = retries_.load();
  if (options_.cache != nullptr) {
    const sweep::CacheStats cache_stats = options_.cache->stats();
    stats.cache_hits = cache_stats.hits;
    stats.cache_misses = cache_stats.misses;
    stats.cache_stores = cache_stats.stores;
    stats.cache_quarantined = cache_stats.quarantined;
  }
  {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    if (!latency_ms_.empty()) {
      std::vector<double> sorted(latency_ms_.begin(), latency_ms_.end());
      std::sort(sorted.begin(), sorted.end());
      const auto at = [&sorted](double quantile) {
        const std::size_t index = std::min(
            sorted.size() - 1,
            static_cast<std::size_t>(quantile *
                                     static_cast<double>(sorted.size())));
        return sorted[index];
      };
      stats.p50_ms = at(0.50);
      stats.p99_ms = at(0.99);
    }
  }
  return stats;
}

// ---- Service ---------------------------------------------------------------

Service::Service(ServiceOptions options, std::uint16_t port)
    : options_(options), engine_(options), listener_(port) {}

Service::~Service() {
  request_stop();
  wait();
}

std::uint16_t Service::port() const noexcept { return listener_.port(); }

void Service::start() {
  if (started_.exchange(true)) return;
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  const int workers = std::max(options_.request_workers, 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Service::request_stop() {
  running_.store(false);
  listener_.shutdown();
  queue_cv_.notify_all();
}

void Service::wait() {
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void Service::accept_loop() {
  while (running_.load()) {
    auto socket = listener_.accept();
    if (!socket) break;  // shutdown
    bool busy = false;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= options_.queue_capacity) {
        busy = true;
      } else {
        queue_.push_back(std::move(*socket));
        queue_cv_.notify_one();
      }
    }
    if (busy) {
      // Explicit backpressure: the queue is bounded, so overload answers
      // a loud `busy` frame right now instead of growing a silent backlog.
      engine_.note_busy();
      Stream stream(std::move(*socket));
      Response response;
      response.status = Response::Status::kBusy;
      (void)stream.write_all(encode_response(response));
    }
  }
}

void Service::worker_loop() {
  for (;;) {
    Socket socket;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || !running_.load();
      });
      if (queue_.empty()) {
        if (!running_.load()) return;  // stopped and drained
        continue;
      }
      socket = std::move(queue_.front());
      queue_.pop_front();
    }
    handle_connection(std::move(socket));
  }
}

void Service::handle_connection(Socket socket) {
  Stream stream(std::move(socket));
  std::string error;
  const auto request = read_request(stream, &error);
  if (!request) {
    // A malformed frame costs one error reply, never the daemon.
    engine_.note_request_outcome(Response::Status::kError);
    Response response;
    response.status = Response::Status::kError;
    response.error = "malformed request: " + error;
    (void)stream.write_all(encode_response(response));
    return;
  }

  Response response;
  switch (request->op) {
    case Request::Op::kRun:
      response = engine_.execute(*request);
      break;
    case Request::Op::kPing:
      response.status = Response::Status::kOk;
      response.stats_text = "pong 1\n";
      engine_.note_request_outcome(Response::Status::kOk);
      break;
    case Request::Op::kStats:
      response.status = Response::Status::kOk;
      response.stats_text = stats_text(engine_.stats());
      engine_.note_request_outcome(Response::Status::kOk);
      break;
    case Request::Op::kShutdown:
      response.status = Response::Status::kOk;
      response.stats_text = "shutting_down 1\n";
      engine_.note_request_outcome(Response::Status::kOk);
      (void)stream.write_all(encode_response(response));
      request_stop();
      return;
  }
  (void)stream.write_all(encode_response(response));
}

std::optional<Response> call_service(std::uint16_t port, const Request& request,
                                     std::string* error) {
  Socket socket = connect_local(port);
  if (!socket.valid()) {
    if (error != nullptr) *error = "connect to 127.0.0.1:" + std::to_string(port) + " failed";
    return std::nullopt;
  }
  Stream stream(std::move(socket));
  if (!stream.write_all(encode_request(request))) {
    if (error != nullptr) *error = "send failed";
    return std::nullopt;
  }
  return read_response(stream, error);
}

}  // namespace edc::serve
