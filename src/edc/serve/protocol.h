// Wire protocol of the sweep service: line-oriented frames carrying
// canonical spec / result text as length-prefixed raw blocks.
//
// The determinism stack *is* the wire format: a request point is the
// canonical spec serialization (spec::serialize — the same bytes the cache
// keys on, hashed by spec_hash), and a response row is the canonical
// result serialization (sim::serialize_result — the same bytes a cache
// entry stores). The service therefore promises responses byte-identical
// to a clean serial Runner::run of the same points, warm or cold, faulted
// or not.
//
// Request frame:
//
//   edc.serve v1\n
//   op run|stats|ping|shutdown\n
//   deadline_ms <double>\n          (op run only; line absent = no deadline)
//   points <K>\n                    (op run only)
//   point_bytes <N>\n<N raw bytes>  (x K)
//   end\n
//
// Response frame:
//
//   edc.serve v1\n
//   status ok|busy|error\n
//   error <quoted reason>\n         (status error only)
//   rows <K>\n                      (status ok only)
//   row_bytes <M>\n<M raw bytes>    (x K)
//   stats_bytes <N>\n<N raw bytes>  (status ok only; "key value" lines)
//   end\n
//
// Framing is self-delimiting (the trailing `end` guards against trailing
// garbage), so one TCP connection carries exactly one request/response
// exchange. Decoding is strict and *bounded*: unknown lines, out-of-order
// fields, short blocks, oversized counts (kMaxPoints) or blocks
// (kMaxBlockBytes) all fail loudly with a reason instead of allocating
// unbounded memory — a malformed or malicious frame costs the daemon one
// error reply, never its heap.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace edc::serve {

inline constexpr char kFrameMagic[] = "edc.serve v1";
/// Hard caps the decoder enforces before allocating.
inline constexpr std::size_t kMaxPoints = 4096;
inline constexpr std::size_t kMaxBlockBytes = 16 * 1024 * 1024;

struct Request {
  enum class Op { kRun, kStats, kPing, kShutdown };
  Op op = Op::kRun;
  /// Per-request deadline in milliseconds, measured by the server from
  /// frame receipt; 0 = none. Expiry yields a loud error response.
  double deadline_ms = 0.0;
  /// Canonical spec texts (spec::serialize), one per requested point.
  std::vector<std::string> points;
};

struct Response {
  enum class Status { kOk, kBusy, kError };
  Status status = Status::kOk;
  std::string error;               ///< set when status == kError
  std::vector<std::string> rows;   ///< canonical result texts, point order
  std::string stats_text;          ///< "key value" lines (run tallies /
                                   ///< daemon stats; empty for ping)
};

/// Byte source the decoder pulls frames from: a connected socket
/// (serve::Stream) or an in-memory buffer (StringSource, for tests and
/// tools). read_line strips the trailing '\n'; both return failure on
/// exhaustion instead of throwing.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  [[nodiscard]] virtual std::optional<std::string> read_line() = 0;
  [[nodiscard]] virtual bool read_exact(char* dst, std::size_t n) = 0;
};

/// ByteSource over an in-memory frame (tests, loopback tooling).
class StringSource final : public ByteSource {
 public:
  explicit StringSource(std::string bytes) : bytes_(std::move(bytes)) {}
  [[nodiscard]] std::optional<std::string> read_line() override;
  [[nodiscard]] bool read_exact(char* dst, std::size_t n) override;
  /// True when every byte has been consumed (frame had no trailing junk).
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::string bytes_;
  std::size_t pos_ = 0;
};

[[nodiscard]] std::string encode_request(const Request& request);
[[nodiscard]] std::string encode_response(const Response& response);

/// Strict bounded decoders: nullopt plus a human-readable `*error` on any
/// malformed, truncated, or oversized frame.
[[nodiscard]] std::optional<Request> read_request(ByteSource& in,
                                                  std::string* error);
[[nodiscard]] std::optional<Response> read_response(ByteSource& in,
                                                    std::string* error);

}  // namespace edc::serve
