// Minimal RAII POSIX TCP plumbing for the sweep service (localhost only).
//
// The service's transport needs are deliberately small — accept loopback
// connections, read one request frame, write one response frame — so this
// wraps exactly that: a move-only fd (Socket), a listener bound to
// 127.0.0.1 with ephemeral-port support (Listener, port 0 -> kernel picks,
// port() reports), a blocking connect (connect_local), and a buffered
// reader/writer (Stream) exposing the read_line / read_exact / write_all
// primitives the line-oriented protocol codec (serve/protocol.h) consumes.
//
// Robustness posture: every operation degrades to an error return, never
// an abort — a peer that disappears mid-frame yields a short read, which
// the codec reports as a malformed frame and the service answers or drops
// without taking the daemon down. SIGPIPE is disabled per-send
// (MSG_NOSIGNAL) so a client that closed early cannot kill the process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "edc/serve/protocol.h"

namespace edc::serve {

/// Move-only owned file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port). Throws std::runtime_error when binding fails.
class Listener {
 public:
  explicit Listener(std::uint16_t port);

  /// The actually bound port (differs from the request for port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks for the next connection; nullopt once shutdown() was called
  /// (or on a persistent accept error).
  [[nodiscard]] std::optional<Socket> accept();

  /// Unblocks any accept() in flight and makes all future ones fail.
  void shutdown() noexcept;

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Blocking loopback connect; invalid Socket on failure.
[[nodiscard]] Socket connect_local(std::uint16_t port);

/// Buffered frame I/O over a connected socket, implementing the protocol
/// codec's ByteSource contract (bounded read_line, exact-length block
/// reads). Short reads / peer resets surface as nullopt/false.
class Stream final : public ByteSource {
 public:
  explicit Stream(Socket socket) : socket_(std::move(socket)) {}

  [[nodiscard]] std::optional<std::string> read_line() override;
  [[nodiscard]] bool read_exact(char* dst, std::size_t n) override;
  [[nodiscard]] bool write_all(std::string_view bytes);

  [[nodiscard]] const Socket& socket() const noexcept { return socket_; }

 private:
  /// Pulls more bytes into buffer_; false on EOF/error.
  [[nodiscard]] bool fill();

  Socket socket_;
  std::string buffer_;
  std::size_t pos_ = 0;
};

}  // namespace edc::serve
