#include "edc/spec/system_spec.h"

#include <utility>

#include "edc/common/check.h"
#include "edc/core/system.h"

namespace edc::spec {

namespace {

template <typename... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <typename... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

checkpoint::InterruptPolicy::Config with_default_capacitance(
    checkpoint::InterruptPolicy::Config config, Farads node_capacitance) {
  if (config.capacitance <= 0.0) config.capacitance = node_capacitance;
  return config;
}

}  // namespace

bool is_voltage_source(const SourceSpec& source) noexcept {
  return std::holds_alternative<SineSource>(source) ||
         std::holds_alternative<DcSource>(source) ||
         std::holds_alternative<SquareSource>(source) ||
         std::holds_alternative<WindSource>(source) ||
         std::holds_alternative<KineticSource>(source) ||
         std::holds_alternative<VoltageTraceSource>(source) ||
         std::holds_alternative<CustomVoltageSource>(source);
}

bool has_source(const SourceSpec& source) noexcept {
  return !std::holds_alternative<std::monostate>(source);
}

std::unique_ptr<trace::VoltageSource> make_voltage_source(const SourceSpec& source) {
  EDC_CHECK(is_voltage_source(source), "spec does not hold a voltage source");
  return std::visit(
      Overloaded{
          [](const SineSource& s) -> std::unique_ptr<trace::VoltageSource> {
            return std::make_unique<trace::SineVoltageSource>(
                s.amplitude, s.frequency, s.offset, s.series_resistance);
          },
          [](const DcSource& s) -> std::unique_ptr<trace::VoltageSource> {
            return std::make_unique<trace::SineVoltageSource>(0.0, 0.0, s.voltage,
                                                              s.series_resistance);
          },
          [](const SquareSource& s) -> std::unique_ptr<trace::VoltageSource> {
            return std::make_unique<trace::SquareVoltageSource>(
                s.high, s.frequency, s.duty, s.low, s.series_resistance);
          },
          [](const WindSource& s) -> std::unique_ptr<trace::VoltageSource> {
            return std::make_unique<trace::WindTurbineSource>(s.params, s.seed,
                                                              s.horizon);
          },
          [](const KineticSource& s) -> std::unique_ptr<trace::VoltageSource> {
            return std::make_unique<trace::KineticHarvesterSource>(s.params, s.seed,
                                                                   s.horizon);
          },
          [](const VoltageTraceSource& s) -> std::unique_ptr<trace::VoltageSource> {
            return std::make_unique<trace::WaveformVoltageSource>(
                s.wave, s.series_resistance, s.label);
          },
          [](const CustomVoltageSource& s) -> std::unique_ptr<trace::VoltageSource> {
            EDC_CHECK(s.make != nullptr, "custom voltage source factory is empty");
            auto made = s.make();
            EDC_CHECK(made != nullptr, "custom voltage source factory returned null");
            return made;
          },
          [](const auto&) -> std::unique_ptr<trace::VoltageSource> { return nullptr; },
      },
      source);
}

std::unique_ptr<trace::PowerSource> make_power_source(const SourceSpec& source) {
  EDC_CHECK(has_source(source) && !is_voltage_source(source),
            "spec does not hold a power source");
  return std::visit(
      Overloaded{
          [](const ConstantPower& s) -> std::unique_ptr<trace::PowerSource> {
            return std::make_unique<trace::ConstantPowerSource>(s.power);
          },
          [](const MarkovPower& s) -> std::unique_ptr<trace::PowerSource> {
            return std::make_unique<trace::MarkovOnOffPowerSource>(
                s.on_power, s.mean_on, s.mean_off, s.seed, s.horizon);
          },
          [](const RfFieldPower& s) -> std::unique_ptr<trace::PowerSource> {
            return std::make_unique<trace::RfFieldSource>(s.params, s.seed, s.horizon);
          },
          [](const CoupledRfPower& s) -> std::unique_ptr<trace::PowerSource> {
            return std::make_unique<trace::CoupledRfFieldSource>(
                s.field, s.seed, s.horizon, s.gain, s.window_period, s.window_duty,
                s.window_phase);
          },
          [](const IndoorPvPower& s) -> std::unique_ptr<trace::PowerSource> {
            return std::make_unique<trace::IndoorPhotovoltaicSource>(s.params, s.seed,
                                                                     s.days);
          },
          [](const SolarPower& s) -> std::unique_ptr<trace::PowerSource> {
            return std::make_unique<trace::OutdoorSolarSource>(s.params, s.seed,
                                                               s.days);
          },
          [](const PowerTraceSource& s) -> std::unique_ptr<trace::PowerSource> {
            return std::make_unique<trace::WaveformPowerSource>(s.wave, s.label);
          },
          [](const CustomPowerSource& s) -> std::unique_ptr<trace::PowerSource> {
            EDC_CHECK(s.make != nullptr, "custom power source factory is empty");
            auto made = s.make();
            EDC_CHECK(made != nullptr, "custom power source factory returned null");
            return made;
          },
          [](const auto&) -> std::unique_ptr<trace::PowerSource> { return nullptr; },
      },
      source);
}

std::unique_ptr<workloads::Program> make_workload(const WorkloadSpec& workload) {
  if (workload.factory) {
    auto made = workload.factory();
    EDC_CHECK(made != nullptr, "workload factory returned null");
    return made;
  }
  EDC_CHECK(!workload.kind.empty(),
            "a workload is required (set workload.kind or workload.factory)");
  return workloads::make_program(workload.kind, workload.seed);
}

std::unique_ptr<checkpoint::PolicyBase> make_policy(
    const PolicySpec& policy, const std::function<Farads()>& capacitance_probe,
    Farads node_capacitance) {
  return std::visit(
      Overloaded{
          [&](const Hibernus& p) -> std::unique_ptr<checkpoint::PolicyBase> {
            return std::make_unique<checkpoint::HibernusPolicy>(
                with_default_capacitance(p.config, node_capacitance));
          },
          [](const NoCheckpoint&) -> std::unique_ptr<checkpoint::PolicyBase> {
            return std::make_unique<checkpoint::NullPolicy>();
          },
          [&](const HibernusPlusPlus& p) -> std::unique_ptr<checkpoint::PolicyBase> {
            auto config =
                p.config.value_or(checkpoint::HibernusPlusPlusPolicy::PlusConfig{});
            if (!config.capacitance_probe) config.capacitance_probe = capacitance_probe;
            return std::make_unique<checkpoint::HibernusPlusPlusPolicy>(config);
          },
          [&](const QuickRecall& p) -> std::unique_ptr<checkpoint::PolicyBase> {
            return std::make_unique<checkpoint::QuickRecallPolicy>(
                with_default_capacitance(p.config, node_capacitance));
          },
          [&](const Nvp& p) -> std::unique_ptr<checkpoint::PolicyBase> {
            return std::make_unique<checkpoint::NvpPolicy>(
                with_default_capacitance(p.config, node_capacitance));
          },
          [](const Mementos& p) -> std::unique_ptr<checkpoint::PolicyBase> {
            return std::make_unique<checkpoint::MementosPolicy>(p.config);
          },
          [&](const BurstTask& p) -> std::unique_ptr<checkpoint::PolicyBase> {
            auto config = p.config;
            if (config.capacitance <= 0.0) config.capacitance = node_capacitance;
            return std::make_unique<taskmodel::BurstTaskPolicy>(config);
          },
          [&](const AdaptiveBuffer& p) -> std::unique_ptr<checkpoint::PolicyBase> {
            auto config = p.config;
            if (config.capacitance <= 0.0) config.capacitance = node_capacitance;
            return std::make_unique<taskmodel::AdaptiveBufferPolicy>(config);
          },
          [&](const CustomPolicy& p) -> std::unique_ptr<checkpoint::PolicyBase> {
            EDC_CHECK(p.make != nullptr, "custom policy factory is empty");
            auto made = p.make(capacitance_probe, node_capacitance);
            EDC_CHECK(made != nullptr, "custom policy factory returned null");
            return made;
          },
      },
      policy);
}

core::EnergyDrivenSystem instantiate(const SystemSpec& spec) {
  EDC_CHECK(has_source(spec.source),
            "a source is required (sine_source / wind_source / ...)");
  EDC_CHECK(spec.storage.capacitance > 0.0, "capacitance must be positive");
  EDC_CHECK(spec.storage.initial_voltage >= 0.0,
            "initial voltage must be non-negative");
  EDC_CHECK(spec.storage.bleed >= 0.0, "bleed resistance must be non-negative");

  core::EnergyDrivenSystem::Parts parts;
  if (is_voltage_source(spec.source)) {
    parts.voltage_source = make_voltage_source(spec.source);
    parts.driver = std::make_unique<circuit::RectifiedSourceDriver>(
        *parts.voltage_source, spec.rectifier);
  } else {
    parts.power_source = make_power_source(spec.source);
    parts.driver = std::make_unique<circuit::HarvesterPowerDriver>(
        *parts.power_source, spec.harvester);
  }

  parts.node = std::make_unique<circuit::SupplyNode>(spec.storage.capacitance,
                                                     spec.storage.initial_voltage);
  if (spec.storage.bleed > 0.0) parts.node->set_bleed(spec.storage.bleed);

  parts.program = make_workload(spec.workload);

  circuit::SupplyNode* node_ptr = parts.node.get();
  const std::function<Farads()> probe = [node_ptr] { return node_ptr->capacitance(); };
  parts.policy = make_policy(spec.policy, probe, spec.storage.capacitance);

  parts.mcu = std::make_unique<mcu::Mcu>(spec.mcu, *parts.program, *parts.policy);
  parts.mcu->set_peripheral_snapshotting(spec.snapshot_peripherals);
  parts.policy->attach(*parts.mcu);

  if (spec.governor.has_value()) {
    parts.governor = std::make_unique<neutral::McuDfsGovernor>(*spec.governor);
  }
  parts.sim_config = spec.sim;
  return core::EnergyDrivenSystem(std::move(parts));
}

}  // namespace edc::spec
