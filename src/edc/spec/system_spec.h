// Value-semantic system description.
//
// A SystemSpec is a copyable, declarative recipe for a complete
// energy-driven system: source, front-end, storage, workload, checkpoint
// policy and optional governor are all plain data (variants of parameter
// structs), not live components. Because a spec is a value it can be
// stamped out into any number of independent EnergyDrivenSystem instances
// — the foundation of the sweep engine (edc/sweep), which instantiates the
// same spec with axis mutations across a thread pool.
//
//   spec::SystemSpec spec;
//   spec.source = spec::SineSource{3.3, 2.0};
//   spec.storage.capacitance = 22e-6;
//   spec.workload.kind = "fft";
//   auto system = spec::instantiate(spec);   // repeatable, thread-safe
//
// core::SystemBuilder remains the fluent front door; it now just edits a
// SystemSpec and delegates build() to instantiate().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>

#include "edc/checkpoint/hibernus_pp.h"
#include "edc/checkpoint/interrupt_policy.h"
#include "edc/checkpoint/mementos.h"
#include "edc/checkpoint/policy_base.h"
#include "edc/circuit/rectifier.h"
#include "edc/common/units.h"
#include "edc/mcu/mcu.h"
#include "edc/neutral/dfs_governor.h"
#include "edc/sim/simulator.h"
#include "edc/taskmodel/adaptive_buffer_policy.h"
#include "edc/taskmodel/burst_policy.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/voltage_sources.h"
#include "edc/trace/waveform.h"
#include "edc/workloads/program.h"

namespace edc::core {
class EnergyDrivenSystem;
}

namespace edc::spec {

// ---- sources (Thevenin voltage sources feed the rectifier path) ---------

/// Half-wave-rectified lab sine (the Fig 7 validation source).
struct SineSource {
  Volts amplitude = 3.3;
  Hertz frequency = 2.0;
  Volts offset = 0.0;
  Ohms series_resistance = 50.0;
};

/// Steady DC supply (bench PSU through the same rectifier path).
struct DcSource {
  Volts voltage = 3.3;
  Ohms series_resistance = 50.0;
};

/// Hard on/off square-wave supply.
struct SquareSource {
  Volts high = 3.3;
  Hertz frequency = 10.0;
  double duty = 0.5;
  Volts low = 0.0;
  Ohms series_resistance = 50.0;
};

/// Micro wind turbine (Fig 1a / Fig 8).
struct WindSource {
  trace::WindTurbineSource::Params params;
  std::uint64_t seed = 1;
  Seconds horizon = 30.0;
};

/// Resonant kinetic harvester excited by an impulse train.
struct KineticSource {
  trace::KineticHarvesterSource::Params params;
  std::uint64_t seed = 1;
  Seconds horizon = 30.0;
};

/// Recorded open-circuit voltage trace (e.g. loaded from CSV).
struct VoltageTraceSource {
  trace::Waveform wave;
  Ohms series_resistance = 50.0;
  std::string label = "waveform-voltage";
};

/// Escape hatch: a factory for any VoltageSource. The factory must be a
/// pure generator — thread-safe and returning a fresh source per call — so
/// the spec stays instantiable from sweep worker threads.
struct CustomVoltageSource {
  std::function<std::unique_ptr<trace::VoltageSource>()> make;
};

// ---- sources (power envelopes feed the harvester-converter path) --------

/// Constant available power (idealised harvester).
struct ConstantPower {
  Watts power = 1e-3;
};

/// Two-state Markov on/off supply with exponential dwell times.
struct MarkovPower {
  Watts on_power = 1e-3;
  Seconds mean_on = 0.1;
  Seconds mean_off = 0.1;
  std::uint64_t seed = 1;
  Seconds horizon = 60.0;
};

/// Duty-cycled RFID reader field.
struct RfFieldPower {
  trace::RfFieldSource::Params params;
  std::uint64_t seed = 1;
  Seconds horizon = 60.0;
};

/// A fleet node's view of a shared RF field (the spec::FleetSpec lowering
/// target; see spec/fleet_spec.h). The field block is identical — params
/// and seed — across every node of a coupled fleet, so all nodes observe
/// the same seeded burst schedule; `gain` is this node's inverse-square-law
/// path attenuation and the window fields its duty-cycled basestation
/// harvest slot. Fully serializable, so a fleet point is an ordinary
/// cacheable grid point.
struct CoupledRfPower {
  trace::RfFieldSource::Params field;
  std::uint64_t seed = 1;
  Seconds horizon = 60.0;
  double gain = 1.0;
  Seconds window_period = 0.0;  ///< 0 = harvest window always open
  double window_duty = 1.0;
  Seconds window_phase = 0.0;
};

/// Indoor photovoltaic cell over `days` days (Fig 1b).
struct IndoorPvPower {
  trace::IndoorPhotovoltaicSource::Params params;
  std::uint64_t seed = 1;
  int days = 1;
};

/// Outdoor solar panel over `days` days (Eq 1's T = 24 h environment).
struct SolarPower {
  trace::OutdoorSolarSource::Params params;
  std::uint64_t seed = 1;
  int days = 1;
};

/// Recorded available-power trace (watts).
struct PowerTraceSource {
  trace::Waveform wave;
  std::string label = "waveform-power";
};

/// Escape hatch: a factory for any PowerSource (same contract as
/// CustomVoltageSource::make).
struct CustomPowerSource {
  std::function<std::unique_ptr<trace::PowerSource>()> make;
};

/// One-of source descriptor. std::monostate means "not yet specified";
/// instantiate() rejects it.
using SourceSpec =
    std::variant<std::monostate, SineSource, DcSource, SquareSource, WindSource,
                 KineticSource, VoltageTraceSource, CustomVoltageSource,
                 ConstantPower, MarkovPower, RfFieldPower, CoupledRfPower,
                 IndoorPvPower, SolarPower, PowerTraceSource, CustomPowerSource>;

/// True if `source` holds a Thevenin voltage alternative (rectifier path);
/// false for power-envelope alternatives (harvester path) and monostate.
[[nodiscard]] bool is_voltage_source(const SourceSpec& source) noexcept;

/// True unless `source` is std::monostate.
[[nodiscard]] bool has_source(const SourceSpec& source) noexcept;

// ---- storage -------------------------------------------------------------

struct StorageSpec {
  /// Total node capacitance (decoupling + any added storage).
  Farads capacitance = 10e-6;
  Volts initial_voltage = 0.0;
  /// Board leakage in parallel with the node (0 = none).
  Ohms bleed = 0.0;
};

// ---- workload ------------------------------------------------------------

struct WorkloadSpec {
  /// A standard workload kind (see workloads::standard_program_kinds());
  /// ignored when `factory` is set.
  std::string kind;
  std::uint64_t seed = 1;
  /// Custom program factory; must be a pure generator (thread-safe, fresh
  /// program per call) so sweeps can instantiate the spec concurrently.
  std::function<std::unique_ptr<workloads::Program>()> factory;
};

// ---- checkpoint policy ---------------------------------------------------

/// Hibernus [9]. A zero `config.capacitance` is filled in with the node
/// capacitance at instantiation (the "characterised for the deployed
/// storage" default); set it explicitly to model a mischaracterisation.
struct Hibernus {
  checkpoint::InterruptPolicy::Config config;
};

/// No checkpointing: restart from scratch after every outage.
struct NoCheckpoint {};

/// Hibernus++ [2]; a missing capacitance_probe is bound to the node.
struct HibernusPlusPlus {
  std::optional<checkpoint::HibernusPlusPlusPolicy::PlusConfig> config;
};

/// QuickRecall [8] (unified FRAM). Zero capacitance = node capacitance.
struct QuickRecall {
  checkpoint::InterruptPolicy::Config config;
};

/// Non-volatile processor [10]. Zero capacitance = node capacitance.
struct Nvp {
  checkpoint::InterruptPolicy::Config config;
};

/// Mementos [7] (compile-time instrumented polling).
struct Mementos {
  checkpoint::MementosPolicy::Config config;
};

/// Task-based burst execution. Zero capacitance = node capacitance.
struct BurstTask {
  taskmodel::BurstTaskPolicy::Config config;
};

/// Energy-adaptive commit buffering (taskmodel::AdaptiveBufferPolicy):
/// commit-buffer size tracked against an EWMA of the measured harvest
/// rate. Zero capacitance = node capacitance.
struct AdaptiveBuffer {
  taskmodel::AdaptiveBufferPolicy::Config config;
};

/// Escape hatch: a factory for any PolicyBase. Receives a live capacitance
/// probe bound to the node plus the node capacitance, mirroring what the
/// built-in policies get. Must return a fresh policy per call.
struct CustomPolicy {
  std::function<std::unique_ptr<checkpoint::PolicyBase>(
      const std::function<Farads()>& capacitance_probe, Farads node_capacitance)>
      make;
};

/// One-of policy descriptor; default-constructed = Hibernus with derived
/// thresholds (the historical SystemBuilder default).
using PolicySpec =
    std::variant<Hibernus, NoCheckpoint, HibernusPlusPlus, QuickRecall, Nvp,
                 Mementos, BurstTask, AdaptiveBuffer, CustomPolicy>;

// ---- the spec ------------------------------------------------------------

struct SystemSpec {
  SourceSpec source;
  /// Front-end for voltage-source alternatives.
  circuit::RectifierParams rectifier;
  /// Front-end for power-source alternatives.
  circuit::HarvesterPowerDriver::Params harvester;
  StorageSpec storage;
  WorkloadSpec workload;
  PolicySpec policy;
  std::optional<neutral::McuDfsGovernor::Config> governor;
  mcu::McuParams mcu;
  /// Include the peripheral configuration file in snapshots (default: pay a
  /// re-initialisation cost after each outage instead).
  bool snapshot_peripherals = false;
  sim::SimConfig sim;
};

// ---- component factories (also used by tests/tools) ----------------------

/// Builds the source held by a voltage alternative. Precondition:
/// is_voltage_source(source).
[[nodiscard]] std::unique_ptr<trace::VoltageSource> make_voltage_source(
    const SourceSpec& source);

/// Builds the source held by a power alternative. Precondition:
/// has_source(source) && !is_voltage_source(source).
[[nodiscard]] std::unique_ptr<trace::PowerSource> make_power_source(
    const SourceSpec& source);

/// Builds a fresh program from the workload descriptor.
[[nodiscard]] std::unique_ptr<workloads::Program> make_workload(
    const WorkloadSpec& workload);

/// Builds a fresh policy; `capacitance_probe`/`node_capacitance` supply the
/// defaults the descriptors may leave unset.
[[nodiscard]] std::unique_ptr<checkpoint::PolicyBase> make_policy(
    const PolicySpec& policy, const std::function<Farads()>& capacitance_probe,
    Farads node_capacitance);

/// Validates the spec and wires a fresh, fully independent system from it.
/// May be called any number of times, concurrently, on the same spec (the
/// spec is read-only; custom factories must honour their purity contract).
[[nodiscard]] core::EnergyDrivenSystem instantiate(const SystemSpec& spec);

}  // namespace edc::spec
