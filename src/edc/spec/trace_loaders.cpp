#include "edc/spec/trace_loaders.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "edc/trace/csv.h"

namespace edc::spec {

namespace {

trace::Waveform read_waveform_csv(const std::string& csv_path) {
  std::ifstream in(csv_path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot open trace CSV: '" + csv_path + "'");
  }
  return trace::read_csv(in);
}

std::string basename_label(const std::string& csv_path) {
  return std::filesystem::path(csv_path).filename().string();
}

}  // namespace

VoltageTraceSource load_voltage_trace_csv(const std::string& csv_path,
                                          Ohms series_resistance) {
  VoltageTraceSource source;
  source.wave = read_waveform_csv(csv_path);
  source.series_resistance = series_resistance;
  source.label = basename_label(csv_path);
  return source;
}

PowerTraceSource load_power_trace_csv(const std::string& csv_path) {
  PowerTraceSource source;
  source.wave = read_waveform_csv(csv_path);
  source.label = basename_label(csv_path);
  return source;
}

std::vector<std::string> list_trace_csvs(const std::string& dataset_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dataset_dir, ec)) {
    throw std::invalid_argument("not a dataset directory: '" + dataset_dir + "'");
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dataset_dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".csv") continue;
    paths.push_back(entry.path().string());
  }
  if (paths.empty()) {
    throw std::invalid_argument("no *.csv traces in dataset directory: '" +
                                dataset_dir + "'");
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace edc::spec
