// Value-semantic multi-node system description.
//
// A FleetSpec scales SystemSpec's node-count-1 world to node-count-N: an
// ordered vector of per-node SystemSpecs plus a declarative CouplingSpec
// describing what the nodes share. The first coupling family is the
// shared-RF scenario from the harvesting-sensor-network literature (see
// PAPERS.md): one reader field serves the whole fleet, each node sees it
// through its own inverse-square-law path gain, and a duty-cycled
// basestation schedule opens per-node harvest windows — one node's
// transmission slot is another node's harvest opportunity.
//
// The design principle is *lowering*: coupling is declarative data, not a
// runtime broadcast bus. fleet_node_spec(fleet, i) folds the coupling into
// node i's SystemSpec by substituting a fully serializable CoupledRfPower
// source (shared field params + seed, per-node gain and window). Because
// the field's seeded burst schedule is a pure function of the coupling
// spec, every node reconstructs bit-identical per-substep field samples —
// the declarative realization of the batch kernel's once-per-substep
// DriverSample broadcast (circuit/supply_driver.h) — while each lowered
// node remains an ordinary, independently cacheable sweep grid point. That
// is what lets the whole Cache/Runner/Search stack work unchanged on
// fleet points (see sweep/fleet.h).
//
//   spec::FleetSpec fleet;
//   fleet.nodes.assign(3, node_template);          // sources left unset
//   spec::SharedRfCoupling rf;
//   rf.gains = {1.0, 0.5, 0.25};                    // distance attenuation
//   rf.window_period = 3.0; rf.window_duty = 1.0/3; // slotted basestation
//   rf.phases = {0.0, 1.0, 2.0};                    // staggered slots
//   fleet.coupling = rf;
//   sim::FleetSimulator(fleet).run();               // or sweep::run_fleet
#pragma once

#include <cstddef>
#include <cstdint>
#include <variant>
#include <vector>

#include "edc/spec/system_spec.h"

namespace edc::spec {

/// Shared-RF-field coupling: the whole fleet harvests one reader field.
/// `field` + `seed` are fleet-wide (every node observes the same seeded
/// burst schedule); `gains` and `phases` are per-node.
struct SharedRfCoupling {
  trace::RfFieldSource::Params field;
  std::uint64_t seed = 1;
  Seconds horizon = 60.0;
  /// Per-node path gain (inverse-square-law distance attenuation).
  /// Required: size == FleetSpec::nodes.size(), every entry >= 0.
  std::vector<double> gains;
  /// Duty-cycled basestation harvest windows; period 0 = always open.
  Seconds window_period = 0.0;
  double window_duty = 1.0;
  /// Per-node window phase offsets (TDMA-style slot staggering). Empty =
  /// all zero; otherwise size == nodes.size(), every entry >= 0.
  std::vector<Seconds> phases;
};

/// One-of coupling descriptor; std::monostate = uncoupled (each node keeps
/// its own source and any per-node lattice).
using CouplingSpec = std::variant<std::monostate, SharedRfCoupling>;

struct FleetSpec {
  std::vector<SystemSpec> nodes;
  CouplingSpec coupling;

  [[nodiscard]] std::size_t size() const noexcept { return nodes.size(); }
  [[nodiscard]] bool coupled() const noexcept {
    return !std::holds_alternative<std::monostate>(coupling);
  }
};

/// Validates the fleet's cross-node invariants; throws std::invalid_argument
/// (EDC_CHECK) on violation:
///  * at least one node;
///  * shared-RF coupling: gains sized to the fleet and non-negative, phases
///    empty or sized to the fleet, a positive horizon, a sane window;
///  * coupled nodes leave their own source unset (std::monostate) — the
///    coupling supplies it via lowering;
///  * coupled nodes agree on the shared dt lattice (sim.dt, node_substeps,
///    t_end), so every node samples the field at the same substep instants.
void validate_fleet(const FleetSpec& fleet);

/// Lowers node i to its effective single-node SystemSpec: a copy of
/// nodes[i] with the coupling folded in (shared-RF coupling substitutes a
/// CoupledRfPower source carrying the fleet field plus node i's gain and
/// window). Uncoupled fleets return nodes[i] unchanged — which is what
/// makes an N=1 uncoupled fleet bit-identical to the scalar path.
/// Validates the fleet first.
[[nodiscard]] SystemSpec fleet_node_spec(const FleetSpec& fleet, std::size_t i);

/// The canonical shared-RF example fleet used by the tools' fleet entry
/// points (eq5_crossover --fleet, design_query --fleet-demo), the fleet
/// smoke script and the README: `node_count` identical sense nodes under
/// adaptive buffering, harvesting one jittered reader field through
/// 1/d^2 gains and staggered basestation slots.
[[nodiscard]] FleetSpec example_rf_fleet(std::size_t node_count = 3);

}  // namespace edc::spec
