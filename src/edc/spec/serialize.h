// Canonical, versioned text serialization for spec::SystemSpec.
//
// serialize() maps a spec to a unique byte string: every field of every
// source/storage/workload/policy variant is emitted on its own line, in a
// fixed order, with doubles printed in shortest round-trip form
// (std::to_chars), so serialize(parse(serialize(s))) == serialize(s)
// byte-for-byte. parse() is strict — it expects exactly the canonical
// lines in canonical order, and throws SpecFormatError on anything else
// (unknown fields, missing fields, trailing garbage, version mismatch).
// That strictness is what makes the format safe to hash: two specs collide
// only if they are semantically identical (or FNV-64 collides, which the
// cache guards against by storing the full key text).
//
// Custom factory callbacks (CustomVoltageSource, CustomPowerSource,
// CustomPolicy, WorkloadSpec::factory, a hibernus++ capacitance_probe)
// cannot be serialized — they are opaque code, not data. Such specs are
// *non-cacheable*: is_cacheable() returns false, non_cacheable_reason()
// names the offending field, and serialize() throws. The sweep cache
// simulates them unconditionally.
//
// Versioning policy: kSpecFormatVersion is part of the header line and of
// the cache directory layout. Bump it whenever the canonical byte stream
// for an existing spec would change (new field, reordered field, changed
// number formatting) — old cache entries then simply stop matching.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "edc/common/canon.h"
#include "edc/spec/fleet_spec.h"
#include "edc/spec/system_spec.h"

namespace edc::spec {

// v2: SimConfig gained macro_stepping + macro_v_tol (PR 3). The version is
// part of the cache directory layout, so v1 entries age out instead of
// colliding with differently-shaped keys.
// v3: macro_stepping's semantics widened — the quiescent engine (PR 4) now
// also macro-steps sleep/wait/done spans to the analytic comparator
// crossing, so macro results for sleep-heavy scenarios legitimately moved
// within the accuracy contract. The byte format is unchanged; the bump
// exists to age out cached macro rows computed under the old semantics.
// v4: SimConfig gained charge_spans (PR 5, the analytic charge-span
// planner), and macro runs additionally jump certified charging ramps —
// the field changes the byte stream and the semantics widening ages out
// macro rows cached under decay-only planning. The stochastic sources'
// quiet-segment hints don't alter the byte format but legitimately move
// macro results for wind/kinetic scenarios within the accuracy contract,
// which the same bump covers.
// v5: SimConfig gained ramp_spans (PR 7, the certified piecewise-linear
// span planner), and macro runs additionally jump interval-certified
// affine chords of sine/wind/trace sources — the field changes the byte
// stream and the semantics widening ages out macro rows cached under
// constant-window-only planning.
// v6: the fleet API (PR 10). Two new serializable variants — the
// coupled_rf source (spec::CoupledRfPower, the FleetSpec lowering target)
// and the adaptive_buffer policy (spec::AdaptiveBuffer) — plus the
// edc.FleetSpec container format below. Existing specs' byte streams are
// unchanged, but the tag vocabulary widened, so the bump keeps old caches
// from holding entries a newer reader would accept and an older reader
// would reject.
inline constexpr int kSpecFormatVersion = 6;

/// Thrown by serialize()/parse_spec() on any deviation from the canonical
/// format (shared with the SimResult serializer in edc/sim/result_io).
using SpecFormatError = canon::FormatError;

/// Empty string when `spec` is canonically serializable; otherwise the
/// human-readable reason it is not (names the opaque-callback field).
[[nodiscard]] std::string non_cacheable_reason(const SystemSpec& spec);

/// True when serialize() would succeed (no opaque factory callbacks).
[[nodiscard]] bool is_cacheable(const SystemSpec& spec);

/// Canonical byte string of the spec. Throws SpecFormatError when
/// !is_cacheable(spec).
[[nodiscard]] std::string serialize(const SystemSpec& spec);

/// Inverse of serialize(). Strict: throws SpecFormatError on unknown or
/// out-of-order fields, wrong version, truncation, or trailing bytes.
[[nodiscard]] SystemSpec parse_spec(const std::string& text);

/// FNV-1a 64-bit over arbitrary bytes (the cache's content address).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// fnv1a64(serialize(spec)); throws when !is_cacheable(spec). Stable
/// across runs, platforms and processes for a given format version
/// (golden-hash tested in tests/spec_serial_test.cpp).
[[nodiscard]] std::uint64_t spec_hash(const SystemSpec& spec);

// ---- fleets ----------------------------------------------------------------
// The FleetSpec container shares the version, the strictness contract and
// the node-body byte format with single-node specs: each node is emitted
// with exactly the serialize() field stream, wrapped in "node i" blocks,
// followed by the coupling block. serialize_fleet(parse_fleet(text)) is
// byte-identical, and fleet_hash is the content address sweep-level fleet
// tooling reports (per-node cache keys remain the *lowered* node specs'
// spec_hashes — see sweep/fleet.h).

/// Empty string when every node of the fleet is canonically serializable;
/// otherwise names the first offending node and its opaque-callback field.
[[nodiscard]] std::string non_cacheable_reason(const FleetSpec& fleet);

/// True when serialize_fleet() would succeed.
[[nodiscard]] bool is_cacheable(const FleetSpec& fleet);

/// Canonical byte string of the fleet (validates it first). Throws
/// SpecFormatError when !is_cacheable(fleet).
[[nodiscard]] std::string serialize_fleet(const FleetSpec& fleet);

/// Inverse of serialize_fleet(). Strict, like parse_spec().
[[nodiscard]] FleetSpec parse_fleet(const std::string& text);

/// fnv1a64(serialize_fleet(fleet)); throws when !is_cacheable(fleet).
[[nodiscard]] std::uint64_t fleet_hash(const FleetSpec& fleet);

}  // namespace edc::spec
