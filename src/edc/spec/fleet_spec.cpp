#include "edc/spec/fleet_spec.h"

#include <string>

#include "edc/common/check.h"

namespace edc::spec {

void validate_fleet(const FleetSpec& fleet) {
  EDC_CHECK(!fleet.nodes.empty(), "a fleet needs at least one node");
  if (!fleet.coupled()) return;

  const auto& rf = std::get<SharedRfCoupling>(fleet.coupling);
  EDC_CHECK(rf.gains.size() == fleet.nodes.size(),
            "shared-RF coupling needs one gain per node");
  for (double gain : rf.gains) {
    EDC_CHECK(gain >= 0.0, "path gains must be non-negative");
  }
  EDC_CHECK(rf.phases.empty() || rf.phases.size() == fleet.nodes.size(),
            "window phases must be empty or one per node");
  for (Seconds phase : rf.phases) {
    EDC_CHECK(phase >= 0.0, "window phases must be non-negative");
  }
  EDC_CHECK(rf.horizon > 0.0, "field horizon must be positive");
  EDC_CHECK(rf.window_period >= 0.0, "window period must be non-negative");
  if (rf.window_period > 0.0) {
    EDC_CHECK(rf.window_duty > 0.0 && rf.window_duty <= 1.0,
              "window duty must be in (0, 1]");
  }

  const sim::SimConfig& lattice = fleet.nodes.front().sim;
  for (std::size_t i = 0; i < fleet.nodes.size(); ++i) {
    const SystemSpec& node = fleet.nodes[i];
    EDC_CHECK(!has_source(node.source),
              "coupled node " + std::to_string(i) +
                  " must leave its source unset — the coupling supplies it");
    EDC_CHECK(node.sim.dt == lattice.dt &&
                  node.sim.node_substeps == lattice.node_substeps &&
                  node.sim.t_end == lattice.t_end,
              "coupled node " + std::to_string(i) +
                  " disagrees on the shared dt lattice (sim.dt / "
                  "node_substeps / t_end must match across the fleet)");
  }
}

SystemSpec fleet_node_spec(const FleetSpec& fleet, std::size_t i) {
  validate_fleet(fleet);
  EDC_CHECK(i < fleet.nodes.size(), "node index out of range");
  SystemSpec spec = fleet.nodes[i];
  if (const auto* rf = std::get_if<SharedRfCoupling>(&fleet.coupling)) {
    CoupledRfPower source;
    source.field = rf->field;
    source.seed = rf->seed;
    source.horizon = rf->horizon;
    source.gain = rf->gains[i];
    source.window_period = rf->window_period;
    source.window_duty = rf->window_duty;
    source.window_phase = rf->phases.empty() ? 0.0 : rf->phases[i];
    spec.source = source;
  }
  return spec;
}

FleetSpec example_rf_fleet(std::size_t node_count) {
  EDC_CHECK(node_count >= 1, "example fleet needs at least one node");
  SystemSpec node;
  node.storage.capacitance = 220e-6;
  node.workload.kind = "sense";
  node.workload.seed = 5;
  node.sim.t_end = 12.0;
  node.sim.stop_on_completion = false;
  taskmodel::AdaptiveBufferPolicy::Config policy;
  policy.task_energy = 30e-6;
  policy.capacitance = 0.0;  // filled with the node capacitance
  node.policy = AdaptiveBuffer{policy};

  FleetSpec fleet;
  fleet.nodes.assign(node_count, node);

  SharedRfCoupling rf;
  rf.field.field_power = 1.2e-3;
  rf.field.burst_length = 2.0;
  rf.field.burst_period = 4.0;
  rf.field.jitter = 0.1;
  rf.seed = 17;
  rf.horizon = node.sim.t_end;
  // Inverse-square-law gains for nodes at distance ratios 1, sqrt(2),
  // sqrt(3), ...: node i at gain 1/(i+1).
  rf.gains.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    rf.gains.push_back(1.0 / static_cast<double>(i + 1));
  }
  // Staggered basestation slots: the schedule cycles through the nodes,
  // each harvesting for its 1/N share of the period.
  if (node_count > 1) {
    rf.window_period = 3.0;
    rf.window_duty = 1.0 / static_cast<double>(node_count);
    rf.phases.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      rf.phases.push_back(rf.window_period * rf.window_duty *
                          static_cast<double>(i));
    }
  }
  fleet.coupling = rf;
  validate_fleet(fleet);
  return fleet;
}

}  // namespace edc::spec
