#include "edc/spec/serialize.h"

#include <cstddef>
#include <utility>
#include <vector>

namespace edc::spec {

namespace {

using canon::parse_u64;
using canon::Reader;
using canon::Writer;

template <typename... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <typename... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

// ---- enum tags ------------------------------------------------------------

const char* memory_mode_tag(mcu::MemoryMode mode) {
  switch (mode) {
    case mcu::MemoryMode::sram_execution: return "sram";
    case mcu::MemoryMode::unified_fram: return "unified_fram";
    case mcu::MemoryMode::nv_processor: return "nvp";
  }
  throw SpecFormatError("unknown memory mode");
}

mcu::MemoryMode parse_memory_mode(std::string_view tag) {
  if (tag == "sram") return mcu::MemoryMode::sram_execution;
  if (tag == "unified_fram") return mcu::MemoryMode::unified_fram;
  if (tag == "nvp") return mcu::MemoryMode::nv_processor;
  throw SpecFormatError("unknown memory mode tag: '" + std::string(tag) + "'");
}

const char* rectifier_tag(circuit::RectifierKind kind) {
  switch (kind) {
    case circuit::RectifierKind::half_wave: return "half_wave";
    case circuit::RectifierKind::full_wave: return "full_wave";
  }
  throw SpecFormatError("unknown rectifier kind");
}

circuit::RectifierKind parse_rectifier_kind(std::string_view tag) {
  if (tag == "half_wave") return circuit::RectifierKind::half_wave;
  if (tag == "full_wave") return circuit::RectifierKind::full_wave;
  throw SpecFormatError("unknown rectifier tag: '" + std::string(tag) + "'");
}

const char* mementos_mode_tag(checkpoint::MementosPolicy::Mode mode) {
  switch (mode) {
    case checkpoint::MementosPolicy::Mode::loop: return "loop";
    case checkpoint::MementosPolicy::Mode::function: return "function";
    case checkpoint::MementosPolicy::Mode::timer: return "timer";
  }
  throw SpecFormatError("unknown mementos mode");
}

checkpoint::MementosPolicy::Mode parse_mementos_mode(std::string_view tag) {
  using Mode = checkpoint::MementosPolicy::Mode;
  if (tag == "loop") return Mode::loop;
  if (tag == "function") return Mode::function;
  if (tag == "timer") return Mode::timer;
  throw SpecFormatError("unknown mementos mode tag: '" + std::string(tag) + "'");
}

// ---- waveform -------------------------------------------------------------

void write_waveform(Writer& w, const trace::Waveform& wave) {
  w.begin("wave");
  w.field("t0", wave.t0());
  w.field("dt", wave.dt());
  w.begin("samples", std::to_string(wave.size()));
  for (double sample : wave.samples()) w.bare(sample);
  w.end();
  w.end();
}

trace::Waveform read_waveform(Reader& r) {
  r.begin("wave");
  const Seconds t0 = r.number("t0");
  const Seconds dt = r.number("dt");
  const std::size_t count = parse_u64(r.begin_tagged("samples"));
  std::vector<double> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) samples.push_back(r.bare_number());
  r.end();
  r.end();
  return trace::Waveform(t0, dt, std::move(samples));
}

// ---- source ---------------------------------------------------------------

void write_source(Writer& w, const SourceSpec& source) {
  std::visit(
      Overloaded{
          [&](const std::monostate&) { w.begin("source", "none"); },
          [&](const SineSource& s) {
            w.begin("source", "sine");
            w.field("amplitude", s.amplitude);
            w.field("frequency", s.frequency);
            w.field("offset", s.offset);
            w.field("series_resistance", s.series_resistance);
          },
          [&](const DcSource& s) {
            w.begin("source", "dc");
            w.field("voltage", s.voltage);
            w.field("series_resistance", s.series_resistance);
          },
          [&](const SquareSource& s) {
            w.begin("source", "square");
            w.field("high", s.high);
            w.field("frequency", s.frequency);
            w.field("duty", s.duty);
            w.field("low", s.low);
            w.field("series_resistance", s.series_resistance);
          },
          [&](const WindSource& s) {
            w.begin("source", "wind");
            w.field("peak_voltage", s.params.peak_voltage);
            w.field("peak_frequency", s.params.peak_frequency);
            w.field("gust_rise", s.params.gust_rise);
            w.field("gust_fall", s.params.gust_fall);
            w.field("gust_period", s.params.gust_period);
            w.field("gust_jitter", s.params.gust_jitter);
            w.field("cut_in_voltage", s.params.cut_in_voltage);
            w.field("coil_resistance", s.params.coil_resistance);
            w.field("seed", s.seed);
            w.field("horizon", s.horizon);
          },
          [&](const KineticSource& s) {
            w.begin("source", "kinetic");
            w.field("impulse_peak", s.params.impulse_peak);
            w.field("resonance", s.params.resonance);
            w.field("ring_tau", s.params.ring_tau);
            w.field("step_period", s.params.step_period);
            w.field("step_jitter", s.params.step_jitter);
            w.field("coil_resistance", s.params.coil_resistance);
            w.field("seed", s.seed);
            w.field("horizon", s.horizon);
          },
          [&](const VoltageTraceSource& s) {
            w.begin("source", "voltage_trace");
            write_waveform(w, s.wave);
            w.field("series_resistance", s.series_resistance);
            w.field_string("label", s.label);
          },
          [&](const CustomVoltageSource&) {
            throw SpecFormatError("custom voltage source is not serializable");
          },
          [&](const ConstantPower& s) {
            w.begin("source", "constant_power");
            w.field("power", s.power);
          },
          [&](const MarkovPower& s) {
            w.begin("source", "markov_power");
            w.field("on_power", s.on_power);
            w.field("mean_on", s.mean_on);
            w.field("mean_off", s.mean_off);
            w.field("seed", s.seed);
            w.field("horizon", s.horizon);
          },
          [&](const RfFieldPower& s) {
            w.begin("source", "rf_field");
            w.field("field_power", s.params.field_power);
            w.field("burst_length", s.params.burst_length);
            w.field("burst_period", s.params.burst_period);
            w.field("jitter", s.params.jitter);
            w.field("seed", s.seed);
            w.field("horizon", s.horizon);
          },
          [&](const CoupledRfPower& s) {
            w.begin("source", "coupled_rf");
            w.field("field_power", s.field.field_power);
            w.field("burst_length", s.field.burst_length);
            w.field("burst_period", s.field.burst_period);
            w.field("jitter", s.field.jitter);
            w.field("seed", s.seed);
            w.field("horizon", s.horizon);
            w.field("gain", s.gain);
            w.field("window_period", s.window_period);
            w.field("window_duty", s.window_duty);
            w.field("window_phase", s.window_phase);
          },
          [&](const IndoorPvPower& s) {
            w.begin("source", "indoor_pv");
            w.field("night_current_ua", s.params.night_current_ua);
            w.field("day_current_ua", s.params.day_current_ua);
            w.field("day_start_h", s.params.day_start_h);
            w.field("day_end_h", s.params.day_end_h);
            w.field("shoulder_h", s.params.shoulder_h);
            w.field("noise_ua", s.params.noise_ua);
            w.field("operating_voltage", s.params.operating_voltage);
            w.field("day_to_day_jitter", s.params.day_to_day_jitter);
            w.field("seed", s.seed);
            w.field("days", s.days);
          },
          [&](const SolarPower& s) {
            w.begin("source", "solar");
            w.field("panel_peak", s.params.panel_peak);
            w.field("sunrise_h", s.params.sunrise_h);
            w.field("sunset_h", s.params.sunset_h);
            w.field("cloud_depth", s.params.cloud_depth);
            w.field("cloud_correlation", s.params.cloud_correlation);
            w.field("day_to_day_jitter", s.params.day_to_day_jitter);
            w.field("seed", s.seed);
            w.field("days", s.days);
          },
          [&](const PowerTraceSource& s) {
            w.begin("source", "power_trace");
            write_waveform(w, s.wave);
            w.field_string("label", s.label);
          },
          [&](const CustomPowerSource&) {
            throw SpecFormatError("custom power source is not serializable");
          },
      },
      source);
  w.end();
}

SourceSpec read_source(Reader& r) {
  const std::string tag(r.begin_tagged("source"));
  SourceSpec source;
  if (tag == "none") {
    source = std::monostate{};
  } else if (tag == "sine") {
    SineSource s;
    s.amplitude = r.number("amplitude");
    s.frequency = r.number("frequency");
    s.offset = r.number("offset");
    s.series_resistance = r.number("series_resistance");
    source = s;
  } else if (tag == "dc") {
    DcSource s;
    s.voltage = r.number("voltage");
    s.series_resistance = r.number("series_resistance");
    source = s;
  } else if (tag == "square") {
    SquareSource s;
    s.high = r.number("high");
    s.frequency = r.number("frequency");
    s.duty = r.number("duty");
    s.low = r.number("low");
    s.series_resistance = r.number("series_resistance");
    source = s;
  } else if (tag == "wind") {
    WindSource s;
    s.params.peak_voltage = r.number("peak_voltage");
    s.params.peak_frequency = r.number("peak_frequency");
    s.params.gust_rise = r.number("gust_rise");
    s.params.gust_fall = r.number("gust_fall");
    s.params.gust_period = r.number("gust_period");
    s.params.gust_jitter = r.number("gust_jitter");
    s.params.cut_in_voltage = r.number("cut_in_voltage");
    s.params.coil_resistance = r.number("coil_resistance");
    s.seed = r.u64("seed");
    s.horizon = r.number("horizon");
    source = s;
  } else if (tag == "kinetic") {
    KineticSource s;
    s.params.impulse_peak = r.number("impulse_peak");
    s.params.resonance = r.number("resonance");
    s.params.ring_tau = r.number("ring_tau");
    s.params.step_period = r.number("step_period");
    s.params.step_jitter = r.number("step_jitter");
    s.params.coil_resistance = r.number("coil_resistance");
    s.seed = r.u64("seed");
    s.horizon = r.number("horizon");
    source = s;
  } else if (tag == "voltage_trace") {
    VoltageTraceSource s;
    s.wave = read_waveform(r);
    s.series_resistance = r.number("series_resistance");
    s.label = r.text("label");
    source = s;
  } else if (tag == "constant_power") {
    ConstantPower s;
    s.power = r.number("power");
    source = s;
  } else if (tag == "markov_power") {
    MarkovPower s;
    s.on_power = r.number("on_power");
    s.mean_on = r.number("mean_on");
    s.mean_off = r.number("mean_off");
    s.seed = r.u64("seed");
    s.horizon = r.number("horizon");
    source = s;
  } else if (tag == "rf_field") {
    RfFieldPower s;
    s.params.field_power = r.number("field_power");
    s.params.burst_length = r.number("burst_length");
    s.params.burst_period = r.number("burst_period");
    s.params.jitter = r.number("jitter");
    s.seed = r.u64("seed");
    s.horizon = r.number("horizon");
    source = s;
  } else if (tag == "coupled_rf") {
    CoupledRfPower s;
    s.field.field_power = r.number("field_power");
    s.field.burst_length = r.number("burst_length");
    s.field.burst_period = r.number("burst_period");
    s.field.jitter = r.number("jitter");
    s.seed = r.u64("seed");
    s.horizon = r.number("horizon");
    s.gain = r.number("gain");
    s.window_period = r.number("window_period");
    s.window_duty = r.number("window_duty");
    s.window_phase = r.number("window_phase");
    source = s;
  } else if (tag == "indoor_pv") {
    IndoorPvPower s;
    s.params.night_current_ua = r.number("night_current_ua");
    s.params.day_current_ua = r.number("day_current_ua");
    s.params.day_start_h = r.number("day_start_h");
    s.params.day_end_h = r.number("day_end_h");
    s.params.shoulder_h = r.number("shoulder_h");
    s.params.noise_ua = r.number("noise_ua");
    s.params.operating_voltage = r.number("operating_voltage");
    s.params.day_to_day_jitter = r.number("day_to_day_jitter");
    s.seed = r.u64("seed");
    s.days = r.integer("days");
    source = s;
  } else if (tag == "solar") {
    SolarPower s;
    s.params.panel_peak = r.number("panel_peak");
    s.params.sunrise_h = r.number("sunrise_h");
    s.params.sunset_h = r.number("sunset_h");
    s.params.cloud_depth = r.number("cloud_depth");
    s.params.cloud_correlation = r.number("cloud_correlation");
    s.params.day_to_day_jitter = r.number("day_to_day_jitter");
    s.seed = r.u64("seed");
    s.days = r.integer("days");
    source = s;
  } else if (tag == "power_trace") {
    PowerTraceSource s;
    s.wave = read_waveform(r);
    s.label = r.text("label");
    source = s;
  } else {
    throw SpecFormatError("unknown source tag: '" + tag + "'");
  }
  r.end();
  return source;
}

// ---- policy ---------------------------------------------------------------

checkpoint::InterruptPolicy::Config read_interrupt_config(Reader& r) {
  checkpoint::InterruptPolicy::Config c;
  c.capacitance = r.number("capacitance");
  c.margin = r.number("margin");
  c.v_hibernate = r.number("v_hibernate");
  c.v_restore = r.number("v_restore");
  c.restore_headroom = r.number("restore_headroom");
  c.memory_mode = parse_memory_mode(r.tag("memory_mode"));
  return c;
}

void write_policy(Writer& w, const PolicySpec& policy) {
  const auto interrupt_fields = [&w](const checkpoint::InterruptPolicy::Config& c) {
    w.field("capacitance", c.capacitance);
    w.field("margin", c.margin);
    w.field("v_hibernate", c.v_hibernate);
    w.field("v_restore", c.v_restore);
    w.field("restore_headroom", c.restore_headroom);
    w.begin("memory_mode", memory_mode_tag(c.memory_mode));
    w.end();
  };
  std::visit(
      Overloaded{
          [&](const Hibernus& p) {
            w.begin("policy", "hibernus");
            interrupt_fields(p.config);
          },
          [&](const NoCheckpoint&) { w.begin("policy", "none"); },
          [&](const HibernusPlusPlus& p) {
            w.begin("policy", "hibernus_pp");
            if (!p.config.has_value()) {
              w.begin("config", "default");
              w.end();
            } else {
              const auto& c = *p.config;
              if (c.capacitance_probe) {
                throw SpecFormatError(
                    "hibernus++ custom capacitance probe is not serializable");
              }
              w.begin("config", "set");
              w.field("measurement_error", c.measurement_error);
              w.field("calibration_cycles",
                      static_cast<std::uint64_t>(c.calibration_cycles));
              w.field("initial_margin", c.initial_margin);
              w.field("restore_headroom", c.restore_headroom);
              w.field("seed", c.seed);
              w.end();
            }
          },
          [&](const QuickRecall& p) {
            w.begin("policy", "quickrecall");
            interrupt_fields(p.config);
          },
          [&](const Nvp& p) {
            w.begin("policy", "nvp");
            interrupt_fields(p.config);
          },
          [&](const Mementos& p) {
            w.begin("policy", "mementos");
            w.begin("mode", mementos_mode_tag(p.config.mode));
            w.end();
            w.field("v_threshold", p.config.v_threshold);
            w.field("timer_interval", p.config.timer_interval);
            w.field("poll_stride", static_cast<std::uint64_t>(p.config.poll_stride));
          },
          [&](const BurstTask& p) {
            w.begin("policy", "burst");
            w.field("task_energy", p.config.task_energy);
            w.field("capacitance", p.config.capacitance);
            w.field("margin", p.config.margin);
          },
          [&](const AdaptiveBuffer& p) {
            w.begin("policy", "adaptive_buffer");
            w.field("task_energy", p.config.task_energy);
            w.field("capacitance", p.config.capacitance);
            w.field("margin", p.config.margin);
            w.field("ewma_alpha", p.config.ewma_alpha);
            w.field("rate_reference", p.config.rate_reference);
            w.field("min_buffer", static_cast<std::uint64_t>(p.config.min_buffer));
            w.field("max_buffer", static_cast<std::uint64_t>(p.config.max_buffer));
          },
          [&](const CustomPolicy&) {
            throw SpecFormatError("custom policy is not serializable");
          },
      },
      policy);
  w.end();
}

PolicySpec read_policy(Reader& r) {
  const std::string tag(r.begin_tagged("policy"));
  PolicySpec policy;
  if (tag == "hibernus") {
    policy = Hibernus{read_interrupt_config(r)};
  } else if (tag == "none") {
    policy = NoCheckpoint{};
  } else if (tag == "hibernus_pp") {
    HibernusPlusPlus p;
    const std::string config_tag(r.begin_tagged("config"));
    if (config_tag == "set") {
      checkpoint::HibernusPlusPlusPolicy::PlusConfig c;
      c.measurement_error = r.number("measurement_error");
      c.calibration_cycles = static_cast<Cycles>(r.u64("calibration_cycles"));
      c.initial_margin = r.number("initial_margin");
      c.restore_headroom = r.number("restore_headroom");
      c.seed = r.u64("seed");
      p.config = c;
    } else if (config_tag != "default") {
      throw SpecFormatError("unknown hibernus_pp config tag: '" + config_tag + "'");
    }
    r.end();
    policy = p;
  } else if (tag == "quickrecall") {
    policy = QuickRecall{read_interrupt_config(r)};
  } else if (tag == "nvp") {
    policy = Nvp{read_interrupt_config(r)};
  } else if (tag == "mementos") {
    Mementos p;
    const std::string mode_tag(r.begin_tagged("mode"));
    r.end();
    p.config.mode = parse_mementos_mode(mode_tag);
    p.config.v_threshold = r.number("v_threshold");
    p.config.timer_interval = r.number("timer_interval");
    p.config.poll_stride = static_cast<unsigned>(r.u64("poll_stride"));
    policy = p;
  } else if (tag == "burst") {
    BurstTask p;
    p.config.task_energy = r.number("task_energy");
    p.config.capacitance = r.number("capacitance");
    p.config.margin = r.number("margin");
    policy = p;
  } else if (tag == "adaptive_buffer") {
    AdaptiveBuffer p;
    p.config.task_energy = r.number("task_energy");
    p.config.capacitance = r.number("capacitance");
    p.config.margin = r.number("margin");
    p.config.ewma_alpha = r.number("ewma_alpha");
    p.config.rate_reference = r.number("rate_reference");
    p.config.min_buffer = static_cast<unsigned>(r.u64("min_buffer"));
    p.config.max_buffer = static_cast<unsigned>(r.u64("max_buffer"));
    policy = p;
  } else {
    throw SpecFormatError("unknown policy tag: '" + tag + "'");
  }
  r.end();
  return policy;
}

// ---- spec body (shared by the SystemSpec and FleetSpec containers) --------

void write_spec_body(Writer& w, const SystemSpec& spec) {
  write_source(w, spec.source);

  w.begin("rectifier");
  w.begin("kind", rectifier_tag(spec.rectifier.kind));
  w.end();
  w.field("diode_drop", spec.rectifier.diode_drop);
  w.end();

  w.begin("harvester");
  w.field("efficiency", spec.harvester.efficiency);
  w.field("v_ceiling", spec.harvester.v_ceiling);
  w.field("i_max", spec.harvester.i_max);
  w.field("v_floor", spec.harvester.v_floor);
  w.end();

  w.begin("storage");
  w.field("capacitance", spec.storage.capacitance);
  w.field("initial_voltage", spec.storage.initial_voltage);
  w.field("bleed", spec.storage.bleed);
  w.end();

  w.begin("workload");
  w.field_string("kind", spec.workload.kind);
  w.field("seed", spec.workload.seed);
  w.end();

  write_policy(w, spec.policy);

  if (!spec.governor.has_value()) {
    w.begin("governor", "none");
    w.end();
  } else {
    const auto& g = *spec.governor;
    w.begin("governor", "dfs");
    w.field("v_ref", g.v_ref);
    w.field("band", g.band);
    w.field("period", g.period);
    w.begin("frequencies", std::to_string(g.frequencies.size()));
    for (double f : g.frequencies) w.bare(f);
    w.end();
    w.end();
  }

  w.begin("mcu");
  w.begin("power");
  const auto& p = spec.mcu.power;
  w.field("v_min", p.v_min);
  w.field("v_on", p.v_on);
  w.field("i_base", p.i_base);
  w.field("i_per_hz_sram", p.i_per_hz_sram);
  w.field("i_per_hz_fram", p.i_per_hz_fram);
  w.field("i_per_hz_nvp", p.i_per_hz_nvp);
  w.field("i_per_hz_nvm_write", p.i_per_hz_nvm_write);
  w.field("i_sleep", p.i_sleep);
  w.field("i_deep_wait", p.i_deep_wait);
  w.field("boot_cycles", static_cast<std::uint64_t>(p.boot_cycles));
  w.field("save_overhead_cycles", static_cast<std::uint64_t>(p.save_overhead_cycles));
  w.field("save_cycles_per_byte", p.save_cycles_per_byte);
  w.field("restore_overhead_cycles",
          static_cast<std::uint64_t>(p.restore_overhead_cycles));
  w.field("restore_cycles_per_byte", p.restore_cycles_per_byte);
  w.field_size("register_file_bytes", p.register_file_bytes);
  w.field("vcc_poll_cycles", static_cast<std::uint64_t>(p.vcc_poll_cycles));
  w.end();
  w.field("initial_frequency", spec.mcu.initial_frequency);
  w.begin("memory_mode", memory_mode_tag(spec.mcu.memory_mode));
  w.end();
  w.field_size("peripheral_file_bytes", spec.mcu.peripheral_file_bytes);
  w.field("peripheral_reinit_cycles",
          static_cast<std::uint64_t>(spec.mcu.peripheral_reinit_cycles));
  w.end();

  w.field("snapshot_peripherals", spec.snapshot_peripherals);

  w.begin("sim");
  w.field("dt", spec.sim.dt);
  w.field("t_end", spec.sim.t_end);
  w.field("node_substeps", spec.sim.node_substeps);
  w.field("stop_on_completion", spec.sim.stop_on_completion);
  w.field("probe_interval", spec.sim.probe_interval);
  w.field("quiescent_fast_path", spec.sim.quiescent_fast_path);
  w.field("macro_stepping", spec.sim.macro_stepping);
  w.field("charge_spans", spec.sim.charge_spans);
  w.field("ramp_spans", spec.sim.ramp_spans);
  w.field("macro_v_tol", spec.sim.macro_v_tol);
  w.end();
}

SystemSpec read_spec_body(Reader& r) {
  SystemSpec spec;
  spec.source = read_source(r);

  r.begin("rectifier");
  spec.rectifier.kind = parse_rectifier_kind(r.begin_tagged("kind"));
  r.end();
  spec.rectifier.diode_drop = r.number("diode_drop");
  r.end();

  r.begin("harvester");
  spec.harvester.efficiency = r.number("efficiency");
  spec.harvester.v_ceiling = r.number("v_ceiling");
  spec.harvester.i_max = r.number("i_max");
  spec.harvester.v_floor = r.number("v_floor");
  r.end();

  r.begin("storage");
  spec.storage.capacitance = r.number("capacitance");
  spec.storage.initial_voltage = r.number("initial_voltage");
  spec.storage.bleed = r.number("bleed");
  r.end();

  r.begin("workload");
  spec.workload.kind = r.text("kind");
  spec.workload.seed = r.u64("seed");
  r.end();

  spec.policy = read_policy(r);

  const std::string governor_tag(r.begin_tagged("governor"));
  if (governor_tag == "dfs") {
    neutral::McuDfsGovernor::Config g;
    g.v_ref = r.number("v_ref");
    g.band = r.number("band");
    g.period = r.number("period");
    const std::size_t count = parse_u64(r.begin_tagged("frequencies"));
    g.frequencies.clear();
    g.frequencies.reserve(count);
    for (std::size_t i = 0; i < count; ++i) g.frequencies.push_back(r.bare_number());
    r.end();
    spec.governor = std::move(g);
  } else if (governor_tag != "none") {
    throw SpecFormatError("unknown governor tag: '" + governor_tag + "'");
  }
  r.end();

  r.begin("mcu");
  r.begin("power");
  auto& p = spec.mcu.power;
  p.v_min = r.number("v_min");
  p.v_on = r.number("v_on");
  p.i_base = r.number("i_base");
  p.i_per_hz_sram = r.number("i_per_hz_sram");
  p.i_per_hz_fram = r.number("i_per_hz_fram");
  p.i_per_hz_nvp = r.number("i_per_hz_nvp");
  p.i_per_hz_nvm_write = r.number("i_per_hz_nvm_write");
  p.i_sleep = r.number("i_sleep");
  p.i_deep_wait = r.number("i_deep_wait");
  p.boot_cycles = static_cast<Cycles>(r.u64("boot_cycles"));
  p.save_overhead_cycles = static_cast<Cycles>(r.u64("save_overhead_cycles"));
  p.save_cycles_per_byte = r.number("save_cycles_per_byte");
  p.restore_overhead_cycles = static_cast<Cycles>(r.u64("restore_overhead_cycles"));
  p.restore_cycles_per_byte = r.number("restore_cycles_per_byte");
  p.register_file_bytes = r.size_value("register_file_bytes");
  p.vcc_poll_cycles = static_cast<Cycles>(r.u64("vcc_poll_cycles"));
  r.end();
  spec.mcu.initial_frequency = r.number("initial_frequency");
  spec.mcu.memory_mode = parse_memory_mode(r.begin_tagged("memory_mode"));
  r.end();
  spec.mcu.peripheral_file_bytes = r.size_value("peripheral_file_bytes");
  spec.mcu.peripheral_reinit_cycles = static_cast<Cycles>(r.u64("peripheral_reinit_cycles"));
  r.end();

  spec.snapshot_peripherals = r.boolean("snapshot_peripherals");

  r.begin("sim");
  spec.sim.dt = r.number("dt");
  spec.sim.t_end = r.number("t_end");
  spec.sim.node_substeps = r.integer("node_substeps");
  spec.sim.stop_on_completion = r.boolean("stop_on_completion");
  spec.sim.probe_interval = r.number("probe_interval");
  spec.sim.quiescent_fast_path = r.boolean("quiescent_fast_path");
  spec.sim.macro_stepping = r.boolean("macro_stepping");
  spec.sim.charge_spans = r.boolean("charge_spans");
  spec.sim.ramp_spans = r.boolean("ramp_spans");
  spec.sim.macro_v_tol = r.number("macro_v_tol");
  r.end();

  return spec;
}

}  // namespace

// ---- public API -----------------------------------------------------------

std::string non_cacheable_reason(const SystemSpec& spec) {
  if (std::holds_alternative<CustomVoltageSource>(spec.source)) {
    return "source: CustomVoltageSource holds an opaque factory callback";
  }
  if (std::holds_alternative<CustomPowerSource>(spec.source)) {
    return "source: CustomPowerSource holds an opaque factory callback";
  }
  if (spec.workload.factory) {
    return "workload: custom program factory is an opaque callback";
  }
  if (std::holds_alternative<CustomPolicy>(spec.policy)) {
    return "policy: CustomPolicy holds an opaque factory callback";
  }
  if (const auto* hpp = std::get_if<HibernusPlusPlus>(&spec.policy)) {
    if (hpp->config.has_value() && hpp->config->capacitance_probe) {
      return "policy: hibernus++ carries a custom capacitance probe callback";
    }
  }
  return {};
}

bool is_cacheable(const SystemSpec& spec) { return non_cacheable_reason(spec).empty(); }

std::string serialize(const SystemSpec& spec) {
  const std::string reason = non_cacheable_reason(spec);
  if (!reason.empty()) {
    throw SpecFormatError("spec is not serializable — " + reason);
  }

  Writer w;
  w.begin("edc.SystemSpec", "v" + std::to_string(kSpecFormatVersion));
  write_spec_body(w, spec);
  w.end();
  return w.take();
}

SystemSpec parse_spec(const std::string& text) {
  Reader r(text);
  const std::string_view version = r.begin_tagged("edc.SystemSpec");
  if (version != "v" + std::to_string(kSpecFormatVersion)) {
    throw SpecFormatError("unsupported spec format version: '" +
                          std::string(version) + "'");
  }

  SystemSpec spec = read_spec_body(r);
  r.end();
  r.finish();
  return spec;
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t spec_hash(const SystemSpec& spec) { return fnv1a64(serialize(spec)); }

// ---- fleets ----------------------------------------------------------------

std::string non_cacheable_reason(const FleetSpec& fleet) {
  for (std::size_t i = 0; i < fleet.nodes.size(); ++i) {
    const std::string reason = non_cacheable_reason(fleet.nodes[i]);
    if (!reason.empty()) {
      return "node " + std::to_string(i) + ": " + reason;
    }
  }
  return {};
}

bool is_cacheable(const FleetSpec& fleet) {
  return non_cacheable_reason(fleet).empty();
}

std::string serialize_fleet(const FleetSpec& fleet) {
  validate_fleet(fleet);
  const std::string reason = non_cacheable_reason(fleet);
  if (!reason.empty()) {
    throw SpecFormatError("fleet is not serializable — " + reason);
  }

  Writer w;
  w.begin("edc.FleetSpec", "v" + std::to_string(kSpecFormatVersion));
  w.begin("nodes", std::to_string(fleet.nodes.size()));
  for (std::size_t i = 0; i < fleet.nodes.size(); ++i) {
    w.begin("node", std::to_string(i));
    write_spec_body(w, fleet.nodes[i]);
    w.end();
  }
  w.end();

  if (const auto* rf = std::get_if<SharedRfCoupling>(&fleet.coupling)) {
    w.begin("coupling", "shared_rf");
    w.field("field_power", rf->field.field_power);
    w.field("burst_length", rf->field.burst_length);
    w.field("burst_period", rf->field.burst_period);
    w.field("jitter", rf->field.jitter);
    w.field("seed", rf->seed);
    w.field("horizon", rf->horizon);
    w.field("window_period", rf->window_period);
    w.field("window_duty", rf->window_duty);
    w.begin("gains", std::to_string(rf->gains.size()));
    for (double g : rf->gains) w.bare(g);
    w.end();
    w.begin("phases", std::to_string(rf->phases.size()));
    for (Seconds p : rf->phases) w.bare(p);
    w.end();
    w.end();
  } else {
    w.begin("coupling", "none");
    w.end();
  }

  w.end();
  return w.take();
}

FleetSpec parse_fleet(const std::string& text) {
  Reader r(text);
  const std::string_view version = r.begin_tagged("edc.FleetSpec");
  if (version != "v" + std::to_string(kSpecFormatVersion)) {
    throw SpecFormatError("unsupported fleet format version: '" +
                          std::string(version) + "'");
  }

  FleetSpec fleet;
  const std::size_t node_count = parse_u64(r.begin_tagged("nodes"));
  fleet.nodes.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    const std::string_view index = r.begin_tagged("node");
    if (index != std::to_string(i)) {
      throw SpecFormatError("fleet node blocks out of order: expected node " +
                            std::to_string(i) + ", got '" + std::string(index) +
                            "'");
    }
    fleet.nodes.push_back(read_spec_body(r));
    r.end();
  }
  r.end();

  const std::string coupling_tag(r.begin_tagged("coupling"));
  if (coupling_tag == "shared_rf") {
    SharedRfCoupling rf;
    rf.field.field_power = r.number("field_power");
    rf.field.burst_length = r.number("burst_length");
    rf.field.burst_period = r.number("burst_period");
    rf.field.jitter = r.number("jitter");
    rf.seed = r.u64("seed");
    rf.horizon = r.number("horizon");
    rf.window_period = r.number("window_period");
    rf.window_duty = r.number("window_duty");
    const std::size_t gain_count = parse_u64(r.begin_tagged("gains"));
    rf.gains.reserve(gain_count);
    for (std::size_t i = 0; i < gain_count; ++i) rf.gains.push_back(r.bare_number());
    r.end();
    const std::size_t phase_count = parse_u64(r.begin_tagged("phases"));
    rf.phases.reserve(phase_count);
    for (std::size_t i = 0; i < phase_count; ++i) rf.phases.push_back(r.bare_number());
    r.end();
    fleet.coupling = std::move(rf);
  } else if (coupling_tag != "none") {
    throw SpecFormatError("unknown coupling tag: '" + coupling_tag + "'");
  }
  r.end();

  r.end();
  r.finish();
  validate_fleet(fleet);
  return fleet;
}

std::uint64_t fleet_hash(const FleetSpec& fleet) {
  return fnv1a64(serialize_fleet(fleet));
}

}  // namespace edc::spec
