// CSV-backed trace sources for the spec layer (ROADMAP: "trace-driven
// sources in sweeps").
//
// The paper's evaluation argument rests on sweeping designs against
// *measured* harvester datasets, not just synthetic generators. These
// loaders wire trace::read_csv into the spec layer: a "time,value" CSV
// (uniformly sampled; volts for voltage traces, watts for power traces)
// becomes a VoltageTraceSource / PowerTraceSource carrying the waveform as
// plain data. Because the waveform samples are part of the spec, loaded
// traces serialize canonically like every other source — measured-dataset
// sweeps are cacheable and shardable exactly like synthetic ones.
//
//   spec::SystemSpec s;
//   s.source = spec::load_power_trace_csv("datasets/office_pv.csv");
//
// The source label is the file's basename, so grid axes over different
// trace files stay distinguishable in reports (and in cache keys).
#pragma once

#include <string>
#include <vector>

#include "edc/spec/system_spec.h"

namespace edc::spec {

/// Loads a "time,volts" CSV into a rectifier-path trace source. Throws
/// std::invalid_argument when the file is missing, malformed, or not
/// uniformly sampled (see trace::read_csv).
[[nodiscard]] VoltageTraceSource load_voltage_trace_csv(
    const std::string& csv_path, Ohms series_resistance = 50.0);

/// Loads a "time,watts" CSV into a harvester-path trace source.
[[nodiscard]] PowerTraceSource load_power_trace_csv(const std::string& csv_path);

/// All regular "*.csv" files directly inside `dataset_dir`, sorted by
/// filename so every process enumerates a dataset directory identically
/// (grid order, cache keys and shard ownership all depend on it). Throws
/// std::invalid_argument when the directory does not exist or holds no CSV
/// — a silently empty axis would make a zero-point grid. The building
/// block of the sweep layer's trace-directory axes
/// (Grid::voltage_trace_dir_axis / power_trace_dir_axis).
[[nodiscard]] std::vector<std::string> list_trace_csvs(
    const std::string& dataset_dir);

}  // namespace edc::spec
