// Public facade: compose a complete energy-driven system in a few lines.
//
// This is the library analogue of the paper's Fig 6 ("include hibernus.h,
// call Hibernus() first"): pick a source, a storage capacitance, a workload
// and a policy; optionally add a power-neutral governor; run.
//
//   auto system = edc::core::SystemBuilder()
//                     .sine_source(3.3, 2.0)          // 2 Hz half-wave sine
//                     .capacitance(47e-6)
//                     .workload("fft")
//                     .policy_hibernus()
//                     .build();
//   auto result = system.run(10.0);
//
// SystemBuilder is a fluent editor over a value-semantic spec::SystemSpec;
// build() delegates to spec::instantiate(). Grab the spec with to_spec() to
// feed the sweep engine (edc/sweep) with the same configuration.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "edc/checkpoint/hibernus_pp.h"
#include "edc/checkpoint/interrupt_policy.h"
#include "edc/checkpoint/mementos.h"
#include "edc/checkpoint/null_policy.h"
#include "edc/checkpoint/policy_base.h"
#include "edc/circuit/rectifier.h"
#include "edc/circuit/supply_node.h"
#include "edc/mcu/mcu.h"
#include "edc/neutral/dfs_governor.h"
#include "edc/sim/simulator.h"
#include "edc/spec/system_spec.h"
#include "edc/taskmodel/burst_policy.h"
#include "edc/trace/power_sources.h"
#include "edc/trace/voltage_sources.h"

namespace edc::core {

/// A fully wired source + front-end + supply node + MCU + policy
/// (+ optional governor) bundle. Move-only; produced by spec::instantiate()
/// (or SystemBuilder::build(), which wraps it).
class EnergyDrivenSystem {
 public:
  /// Owning bundle of wired components. Exactly one of
  /// voltage_source/power_source is set; driver, node, program, policy and
  /// mcu are required; governor is optional.
  struct Parts {
    std::unique_ptr<trace::VoltageSource> voltage_source;
    std::unique_ptr<trace::PowerSource> power_source;
    std::unique_ptr<circuit::SupplyDriver> driver;
    std::unique_ptr<circuit::SupplyNode> node;
    std::unique_ptr<workloads::Program> program;
    std::unique_ptr<checkpoint::PolicyBase> policy;
    std::unique_ptr<mcu::Mcu> mcu;
    std::unique_ptr<mcu::FrequencyGovernor> governor;
    sim::SimConfig sim_config;
  };

  /// Takes ownership of a wired bundle; throws std::invalid_argument if a
  /// required component is missing.
  explicit EnergyDrivenSystem(Parts parts);

  /// Runs the simulation (optionally overriding the configured horizon).
  sim::SimResult run();
  sim::SimResult run(Seconds t_end);

  [[nodiscard]] mcu::Mcu& mcu() noexcept { return *mcu_; }
  [[nodiscard]] circuit::SupplyNode& node() noexcept { return *node_; }
  [[nodiscard]] workloads::Program& program() noexcept { return *program_; }
  [[nodiscard]] checkpoint::PolicyBase& policy() noexcept { return *policy_; }
  [[nodiscard]] const circuit::SupplyDriver& driver() const noexcept { return *driver_; }
  /// Optional power-neutral governor (null when the spec didn't add one).
  [[nodiscard]] mcu::FrequencyGovernor* governor() noexcept { return governor_.get(); }
  /// The simulation configuration the spec carried (the batch kernel wires
  /// its own stepping loop instead of going through run()).
  [[nodiscard]] const sim::SimConfig& sim_config() const noexcept { return sim_config_; }
  [[nodiscard]] std::string policy_name() const { return policy_->name(); }

 private:
  std::unique_ptr<trace::VoltageSource> voltage_source_;
  std::unique_ptr<trace::PowerSource> power_source_;
  std::unique_ptr<circuit::SupplyDriver> driver_;
  std::unique_ptr<circuit::SupplyNode> node_;
  std::unique_ptr<workloads::Program> program_;
  std::unique_ptr<checkpoint::PolicyBase> policy_;
  std::unique_ptr<mcu::Mcu> mcu_;
  std::unique_ptr<mcu::FrequencyGovernor> governor_;
  sim::SimConfig sim_config_;
};

/// Fluent editor over spec::SystemSpec. Fully reusable: kind-based
/// configuration survives build() (moved-in components are one-shot).
class SystemBuilder {
 public:
  SystemBuilder() = default;
  /// Starts from an existing spec (e.g. to tweak a sweep base).
  explicit SystemBuilder(spec::SystemSpec spec) : spec_(std::move(spec)) {}

  // ---- source (exactly one) ------------------------------------------
  /// Half-wave-rectified lab sine (amplitude V, frequency Hz) — the Fig 7
  /// validation source.
  SystemBuilder& sine_source(Volts amplitude, Hertz frequency,
                             Ohms series_resistance = 50.0);
  /// Steady DC supply (bench PSU through the same rectifier path).
  SystemBuilder& dc_source(Volts voltage, Ohms series_resistance = 50.0);
  /// Micro wind turbine (Fig 1a / Fig 8).
  SystemBuilder& wind_source(std::uint64_t seed, Seconds horizon);
  SystemBuilder& wind_source(const trace::WindTurbineSource::Params& params,
                             std::uint64_t seed, Seconds horizon);
  /// Any Thevenin source through a rectifier. The moved-in source is
  /// one-shot: only the next build() may consume it.
  SystemBuilder& voltage_source(std::unique_ptr<trace::VoltageSource> source,
                                circuit::RectifierParams rectifier = {});
  /// Any power-envelope source through a harvester converter (one-shot).
  SystemBuilder& power_source(std::unique_ptr<trace::PowerSource> source);
  SystemBuilder& power_source(std::unique_ptr<trace::PowerSource> source,
                              circuit::HarvesterPowerDriver::Params params);

  // ---- storage ----------------------------------------------------------
  /// Total node capacitance (decoupling + any added storage).
  SystemBuilder& capacitance(Farads c);
  SystemBuilder& initial_voltage(Volts v);
  /// Board leakage in parallel with the node (0 = none); real transient
  /// boards discharge fully between bursts through this path.
  SystemBuilder& bleed(Ohms resistance);

  // ---- workload ----------------------------------------------------------
  /// A standard workload by kind (see workloads::standard_program_kinds()).
  SystemBuilder& workload(const std::string& kind, std::uint64_t seed = 1);
  /// A custom program instance (one-shot; for reusable specs set a
  /// spec::WorkloadSpec::factory instead).
  SystemBuilder& program(std::unique_ptr<workloads::Program> program);

  // ---- policy (exactly one; default hibernus) ---------------------------
  SystemBuilder& policy_none();
  SystemBuilder& policy_hibernus(checkpoint::InterruptPolicy::Config config = {});
  SystemBuilder& policy_hibernus_pp(
      std::optional<checkpoint::HibernusPlusPlusPolicy::PlusConfig> config = {});
  SystemBuilder& policy_quickrecall(checkpoint::InterruptPolicy::Config config = {});
  SystemBuilder& policy_nvp(checkpoint::InterruptPolicy::Config config = {});
  SystemBuilder& policy_mementos(checkpoint::MementosPolicy::Config config = {});
  SystemBuilder& policy_burst(taskmodel::BurstTaskPolicy::Config config = {});
  SystemBuilder& policy_adaptive_buffer(
      taskmodel::AdaptiveBufferPolicy::Config config = {});
  /// Custom policy instance (its attach() configures the MCU). The instance
  /// is shared across builds of this builder, matching the historical
  /// behaviour — so a spec taken from to_spec() after this call must NOT be
  /// instantiated concurrently (every system would drive the one shared,
  /// unsynchronised policy). For sweeps use spec::CustomPolicy with a
  /// factory that returns a fresh policy per call.
  SystemBuilder& policy(std::unique_ptr<checkpoint::PolicyBase> policy);

  // ---- optional power-neutral governor (hibernus-PN) ---------------------
  SystemBuilder& governor_power_neutral(neutral::McuDfsGovernor::Config config = {});

  // ---- MCU / simulation tuning -------------------------------------------
  SystemBuilder& mcu_params(const mcu::McuParams& params);
  /// Include the peripheral configuration file in snapshots (default: pay a
  /// re-initialisation cost after each outage instead). Applied before the
  /// policy computes its Eq 4 thresholds.
  SystemBuilder& snapshot_peripherals(bool include);
  SystemBuilder& sim_config(const sim::SimConfig& config);
  /// Enable waveform probes at the given sampling interval.
  SystemBuilder& probe(Seconds interval);

  /// The value-semantic description accumulated so far (copy it into a
  /// sweep::Grid to explore around this configuration).
  [[nodiscard]] const spec::SystemSpec& to_spec() const noexcept { return spec_; }

  /// Validates and wires everything: spec::instantiate(to_spec()).
  EnergyDrivenSystem build();

 private:
  spec::SystemSpec spec_;
};

}  // namespace edc::core
