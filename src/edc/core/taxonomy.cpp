#include "edc/core/taxonomy.h"

#include <algorithm>
#include <cmath>

#include "edc/common/check.h"

namespace edc::core {

const char* to_string(AdaptationKind kind) noexcept {
  switch (kind) {
    case AdaptationKind::none: return "none";
    case AdaptationKind::task_based: return "task-based";
    case AdaptationKind::continuous: return "continuous";
  }
  return "?";
}

Classification classify(const SystemDescriptor& d) {
  EDC_CHECK(d.storage >= 0.0, "storage must be non-negative");
  Classification c;
  c.energy_neutral = d.relies_on_eq1;
  c.transient = d.survives_outage;
  // Power-neutrality needs run-time modulation *and* (near) zero buffering:
  // with large storage, T in Eq 1 need not shrink toward zero and the system
  // is merely energy-neutral.
  c.power_neutral = d.modulates_power && d.storage <= kPowerNeutralStorageLimit &&
                    d.adaptation == AdaptationKind::continuous;
  // The shaded Fig 2 region: the energy environment shaped the design, and
  // the system gives up the "look like a battery" abstraction in at least
  // one of the three ways.
  c.energy_driven =
      d.harvesting_in_design &&
      (c.transient || c.power_neutral || !d.added_storage);
  c.storage_log10_j = std::log10(std::max(d.storage, 1e-9));
  c.at_practical_minimum = d.storage <= kPracticalMinimumStorage;
  return c;
}

std::vector<SystemDescriptor> canonical_catalogue() {
  std::vector<SystemDescriptor> systems;

  // --- Traditional / energy-neutral side (§II.A) -----------------------
  systems.push_back({"desktop-pc", 0.32, false, true, false, false,
                     AdaptationKind::none, false});
  systems.push_back({"smartphone", 40e3, true, true, false, false,
                     AdaptationKind::none, false});
  systems.push_back({"laptop-hibernate", 180e3, true, true, true, false,
                     AdaptationKind::continuous, false});
  systems.push_back({"wsn-kansal[3]", 1.0e3, true, true, false, true,
                     AdaptationKind::continuous, true});

  // --- Task-based transient systems (§II.B right of the arc) ------------
  systems.push_back({"wispcam[4]", 27e-3, true, false, true, false,
                     AdaptationKind::task_based, true});
  systems.push_back({"debs-burst[5]", 0.36e-3, true, false, true, false,
                     AdaptationKind::task_based, true});
  systems.push_back({"monjolo[6]", 2.0e-3, true, false, true, false,
                     AdaptationKind::task_based, true});

  // --- Continuous-adaptation transient systems (left of the arc) --------
  systems.push_back({"mementos[7]", 55e-6, false, false, true, false,
                     AdaptationKind::continuous, true});
  systems.push_back({"quickrecall[8]", 50e-6, false, false, true, false,
                     AdaptationKind::continuous, true});
  systems.push_back({"hibernus[9]", 50e-6, false, false, true, false,
                     AdaptationKind::continuous, true});
  systems.push_back({"hibernus++[2]", 50e-6, false, false, true, false,
                     AdaptationKind::continuous, true});
  systems.push_back({"nvp[10]", 5e-6, false, false, true, false,
                     AdaptationKind::continuous, true});

  // --- Power-neutral systems (§II.C) -------------------------------------
  systems.push_back({"pn-mpsoc[11]", 12.5e-3, false, true, false, true,
                     AdaptationKind::continuous, true});
  systems.push_back({"hibernus-pn[14]", 50e-6, false, false, true, true,
                     AdaptationKind::continuous, true});

  return systems;
}

}  // namespace edc::core
