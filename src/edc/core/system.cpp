#include "edc/core/system.h"

#include "edc/common/check.h"

namespace edc::core {

sim::SimResult EnergyDrivenSystem::run() { return run(sim_config_.t_end); }

sim::SimResult EnergyDrivenSystem::run(Seconds t_end) {
  sim::SimConfig config = sim_config_;
  config.t_end = t_end;
  sim::Simulator simulator(config, *node_, *driver_, *mcu_);
  if (governor_) simulator.set_governor(governor_.get());
  return simulator.run();
}

SystemBuilder::SystemBuilder() {
  policy_factory_ = [](const std::function<Farads()>&, Farads node_c) {
    checkpoint::InterruptPolicy::Config config;
    config.capacitance = node_c;
    return std::make_unique<checkpoint::HibernusPolicy>(config);
  };
}

SystemBuilder& SystemBuilder::sine_source(Volts amplitude, Hertz frequency,
                                          Ohms series_resistance) {
  voltage_source_ = std::make_unique<trace::SineVoltageSource>(amplitude, frequency,
                                                               0.0, series_resistance);
  power_source_.reset();
  return *this;
}

SystemBuilder& SystemBuilder::dc_source(Volts voltage, Ohms series_resistance) {
  voltage_source_ = std::make_unique<trace::SineVoltageSource>(0.0, 0.0, voltage,
                                                               series_resistance);
  power_source_.reset();
  return *this;
}

SystemBuilder& SystemBuilder::wind_source(std::uint64_t seed, Seconds horizon) {
  return wind_source(trace::WindTurbineSource::Params{}, seed, horizon);
}

SystemBuilder& SystemBuilder::wind_source(const trace::WindTurbineSource::Params& params,
                                          std::uint64_t seed, Seconds horizon) {
  voltage_source_ = std::make_unique<trace::WindTurbineSource>(params, seed, horizon);
  power_source_.reset();
  return *this;
}

SystemBuilder& SystemBuilder::voltage_source(
    std::unique_ptr<trace::VoltageSource> source, circuit::RectifierParams rectifier) {
  EDC_CHECK(source != nullptr, "source must not be null");
  voltage_source_ = std::move(source);
  rectifier_params_ = rectifier;
  power_source_.reset();
  return *this;
}

SystemBuilder& SystemBuilder::power_source(std::unique_ptr<trace::PowerSource> source) {
  return power_source(std::move(source), circuit::HarvesterPowerDriver::Params{});
}

SystemBuilder& SystemBuilder::power_source(
    std::unique_ptr<trace::PowerSource> source,
    circuit::HarvesterPowerDriver::Params params) {
  EDC_CHECK(source != nullptr, "source must not be null");
  power_source_ = std::move(source);
  harvester_params_ = params;
  voltage_source_.reset();
  return *this;
}

SystemBuilder& SystemBuilder::capacitance(Farads c) {
  EDC_CHECK(c > 0.0, "capacitance must be positive");
  capacitance_ = c;
  return *this;
}

SystemBuilder& SystemBuilder::initial_voltage(Volts v) {
  EDC_CHECK(v >= 0.0, "initial voltage must be non-negative");
  initial_voltage_ = v;
  return *this;
}

SystemBuilder& SystemBuilder::bleed(Ohms resistance) {
  EDC_CHECK(resistance >= 0.0, "bleed resistance must be non-negative");
  bleed_ = resistance;
  return *this;
}

SystemBuilder& SystemBuilder::workload(const std::string& kind, std::uint64_t seed) {
  program_ = workloads::make_program(kind, seed);
  return *this;
}

SystemBuilder& SystemBuilder::program(std::unique_ptr<workloads::Program> program) {
  EDC_CHECK(program != nullptr, "program must not be null");
  program_ = std::move(program);
  return *this;
}

SystemBuilder& SystemBuilder::policy_none() {
  policy_factory_ = [](const std::function<Farads()>&, Farads) {
    return std::make_unique<checkpoint::NullPolicy>();
  };
  return *this;
}

SystemBuilder& SystemBuilder::policy_hibernus(checkpoint::InterruptPolicy::Config config) {
  policy_factory_ = [config](const std::function<Farads()>&, Farads node_c) mutable {
    if (config.capacitance <= 0.0) config.capacitance = node_c;
    return std::make_unique<checkpoint::HibernusPolicy>(config);
  };
  return *this;
}

SystemBuilder& SystemBuilder::policy_hibernus_pp(
    std::optional<checkpoint::HibernusPlusPlusPolicy::PlusConfig> config) {
  policy_factory_ = [config](const std::function<Farads()>& probe, Farads) {
    auto cfg = config.value_or(checkpoint::HibernusPlusPlusPolicy::PlusConfig{});
    if (!cfg.capacitance_probe) cfg.capacitance_probe = probe;
    return std::make_unique<checkpoint::HibernusPlusPlusPolicy>(cfg);
  };
  return *this;
}

SystemBuilder& SystemBuilder::policy_quickrecall(
    checkpoint::InterruptPolicy::Config config) {
  policy_factory_ = [config](const std::function<Farads()>&, Farads node_c) mutable {
    if (config.capacitance <= 0.0) config.capacitance = node_c;
    return std::make_unique<checkpoint::QuickRecallPolicy>(config);
  };
  return *this;
}

SystemBuilder& SystemBuilder::policy_nvp(checkpoint::InterruptPolicy::Config config) {
  policy_factory_ = [config](const std::function<Farads()>&, Farads node_c) mutable {
    if (config.capacitance <= 0.0) config.capacitance = node_c;
    return std::make_unique<checkpoint::NvpPolicy>(config);
  };
  return *this;
}

SystemBuilder& SystemBuilder::policy_mementos(checkpoint::MementosPolicy::Config config) {
  policy_factory_ = [config](const std::function<Farads()>&, Farads) {
    return std::make_unique<checkpoint::MementosPolicy>(config);
  };
  return *this;
}

SystemBuilder& SystemBuilder::policy_burst(taskmodel::BurstTaskPolicy::Config config) {
  policy_factory_ = [config](const std::function<Farads()>&, Farads node_c) mutable {
    if (config.capacitance <= 0.0) config.capacitance = node_c;
    return std::make_unique<taskmodel::BurstTaskPolicy>(config);
  };
  return *this;
}

SystemBuilder& SystemBuilder::policy(std::unique_ptr<checkpoint::PolicyBase> policy) {
  EDC_CHECK(policy != nullptr, "policy must not be null");
  auto shared = std::shared_ptr<checkpoint::PolicyBase>(std::move(policy));
  policy_factory_ = [shared](const std::function<Farads()>&,
                             Farads) mutable -> std::unique_ptr<checkpoint::PolicyBase> {
    EDC_CHECK(shared != nullptr, "custom policy already consumed by build()");
    struct Shim final : checkpoint::PolicyBase {
      std::shared_ptr<checkpoint::PolicyBase> inner;
      void attach(mcu::Mcu& m) override { inner->attach(m); }
      void on_boot(mcu::Mcu& m, Seconds t) override { inner->on_boot(m, t); }
      void on_comparator(mcu::Mcu& m, const circuit::ComparatorEvent& e) override {
        inner->on_comparator(m, e);
      }
      void on_boundary(mcu::Mcu& m, workloads::Boundary b, Seconds t) override {
        inner->on_boundary(m, b, t);
      }
      void on_save_complete(mcu::Mcu& m, Seconds t) override {
        inner->on_save_complete(m, t);
      }
      void on_restore_complete(mcu::Mcu& m, Seconds t) override {
        inner->on_restore_complete(m, t);
      }
      void on_power_loss(mcu::Mcu& m, Seconds t) override { inner->on_power_loss(m, t); }
      void on_workload_complete(mcu::Mcu& m, Seconds t) override {
        inner->on_workload_complete(m, t);
      }
      [[nodiscard]] std::string name() const override { return inner->name(); }
    };
    auto shim = std::make_unique<Shim>();
    shim->inner = shared;
    return shim;
  };
  return *this;
}

SystemBuilder& SystemBuilder::governor_power_neutral(
    neutral::McuDfsGovernor::Config config) {
  governor_config_ = config;
  return *this;
}

SystemBuilder& SystemBuilder::mcu_params(const mcu::McuParams& params) {
  mcu_params_ = params;
  return *this;
}

SystemBuilder& SystemBuilder::snapshot_peripherals(bool include) {
  snapshot_peripherals_ = include;
  return *this;
}

SystemBuilder& SystemBuilder::sim_config(const sim::SimConfig& config) {
  sim_config_ = config;
  return *this;
}

SystemBuilder& SystemBuilder::probe(Seconds interval) {
  EDC_CHECK(interval > 0.0, "probe interval must be positive");
  sim_config_.probe_interval = interval;
  return *this;
}

EnergyDrivenSystem SystemBuilder::build() {
  EDC_CHECK(voltage_source_ != nullptr || power_source_ != nullptr,
            "a source is required (sine_source / wind_source / ...)");
  EDC_CHECK(program_ != nullptr, "a workload is required (workload / program)");

  EnergyDrivenSystem system;
  system.voltage_source_ = std::move(voltage_source_);
  system.power_source_ = std::move(power_source_);
  if (system.voltage_source_) {
    system.driver_ = std::make_unique<circuit::RectifiedSourceDriver>(
        *system.voltage_source_, rectifier_params_);
  } else {
    system.driver_ = std::make_unique<circuit::HarvesterPowerDriver>(
        *system.power_source_, harvester_params_);
  }
  system.node_ = std::make_unique<circuit::SupplyNode>(capacitance_, initial_voltage_);
  if (bleed_ > 0.0) system.node_->set_bleed(bleed_);
  system.program_ = std::move(program_);

  circuit::SupplyNode* node_ptr = system.node_.get();
  const std::function<Farads()> probe = [node_ptr] { return node_ptr->capacitance(); };
  system.policy_ = policy_factory_(probe, capacitance_);

  system.mcu_ =
      std::make_unique<mcu::Mcu>(mcu_params_, *system.program_, *system.policy_);
  system.mcu_->set_peripheral_snapshotting(snapshot_peripherals_);
  system.policy_->attach(*system.mcu_);

  if (governor_config_.has_value()) {
    system.governor_ = std::make_unique<neutral::McuDfsGovernor>(*governor_config_);
  }
  system.sim_config_ = sim_config_;
  return system;
}

}  // namespace edc::core
