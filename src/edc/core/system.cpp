#include "edc/core/system.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "edc/common/check.h"

namespace edc::core {

EnergyDrivenSystem::EnergyDrivenSystem(Parts parts)
    : voltage_source_(std::move(parts.voltage_source)),
      power_source_(std::move(parts.power_source)),
      driver_(std::move(parts.driver)),
      node_(std::move(parts.node)),
      program_(std::move(parts.program)),
      policy_(std::move(parts.policy)),
      mcu_(std::move(parts.mcu)),
      governor_(std::move(parts.governor)),
      sim_config_(parts.sim_config) {
  EDC_CHECK(driver_ != nullptr, "a supply driver is required");
  EDC_CHECK(node_ != nullptr, "a supply node is required");
  EDC_CHECK(program_ != nullptr, "a program is required");
  EDC_CHECK(policy_ != nullptr, "a policy is required");
  EDC_CHECK(mcu_ != nullptr, "an MCU is required");
}

sim::SimResult EnergyDrivenSystem::run() { return run(sim_config_.t_end); }

sim::SimResult EnergyDrivenSystem::run(Seconds t_end) {
  sim::SimConfig config = sim_config_;
  config.t_end = t_end;
  sim::Simulator simulator(config, *node_, *driver_, *mcu_);
  if (governor_) simulator.set_governor(governor_.get());
  return simulator.run();
}

namespace {

/// Wraps a moved-in component as a one-shot spec factory: the first
/// instantiation consumes it, a second throws (mirrors the historical
/// builder contract "keeps its configuration but not ownership"). The
/// claim is atomic so concurrent instantiations (e.g. the spec landed in a
/// parallel sweep) get a deterministic throw instead of a race.
template <typename T>
std::function<std::unique_ptr<T>()> one_shot_factory(std::unique_ptr<T> component) {
  struct Holder {
    std::unique_ptr<T> component;
    std::atomic<bool> taken{false};
  };
  auto holder = std::make_shared<Holder>();
  holder->component = std::move(component);
  return [holder]() -> std::unique_ptr<T> {
    EDC_CHECK(!holder->taken.exchange(true),
              "moved-in component already consumed by build(); use a spec "
              "factory for repeatable instantiation");
    return std::move(holder->component);
  };
}

}  // namespace

SystemBuilder& SystemBuilder::sine_source(Volts amplitude, Hertz frequency,
                                          Ohms series_resistance) {
  spec_.source = spec::SineSource{amplitude, frequency, 0.0, series_resistance};
  return *this;
}

SystemBuilder& SystemBuilder::dc_source(Volts voltage, Ohms series_resistance) {
  spec_.source = spec::DcSource{voltage, series_resistance};
  return *this;
}

SystemBuilder& SystemBuilder::wind_source(std::uint64_t seed, Seconds horizon) {
  return wind_source(trace::WindTurbineSource::Params{}, seed, horizon);
}

SystemBuilder& SystemBuilder::wind_source(const trace::WindTurbineSource::Params& params,
                                          std::uint64_t seed, Seconds horizon) {
  spec_.source = spec::WindSource{params, seed, horizon};
  return *this;
}

SystemBuilder& SystemBuilder::voltage_source(
    std::unique_ptr<trace::VoltageSource> source, circuit::RectifierParams rectifier) {
  EDC_CHECK(source != nullptr, "source must not be null");
  spec_.source = spec::CustomVoltageSource{one_shot_factory(std::move(source))};
  spec_.rectifier = rectifier;
  return *this;
}

SystemBuilder& SystemBuilder::power_source(std::unique_ptr<trace::PowerSource> source) {
  return power_source(std::move(source), circuit::HarvesterPowerDriver::Params{});
}

SystemBuilder& SystemBuilder::power_source(
    std::unique_ptr<trace::PowerSource> source,
    circuit::HarvesterPowerDriver::Params params) {
  EDC_CHECK(source != nullptr, "source must not be null");
  spec_.source = spec::CustomPowerSource{one_shot_factory(std::move(source))};
  spec_.harvester = params;
  return *this;
}

SystemBuilder& SystemBuilder::capacitance(Farads c) {
  EDC_CHECK(c > 0.0, "capacitance must be positive");
  spec_.storage.capacitance = c;
  return *this;
}

SystemBuilder& SystemBuilder::initial_voltage(Volts v) {
  EDC_CHECK(v >= 0.0, "initial voltage must be non-negative");
  spec_.storage.initial_voltage = v;
  return *this;
}

SystemBuilder& SystemBuilder::bleed(Ohms resistance) {
  EDC_CHECK(resistance >= 0.0, "bleed resistance must be non-negative");
  spec_.storage.bleed = resistance;
  return *this;
}

SystemBuilder& SystemBuilder::workload(const std::string& kind, std::uint64_t seed) {
  const auto kinds = workloads::standard_program_kinds();
  EDC_CHECK(std::find(kinds.begin(), kinds.end(), kind) != kinds.end(),
            "unknown workload kind: " + kind);
  spec_.workload.kind = kind;
  spec_.workload.seed = seed;
  spec_.workload.factory = nullptr;
  return *this;
}

SystemBuilder& SystemBuilder::program(std::unique_ptr<workloads::Program> program) {
  EDC_CHECK(program != nullptr, "program must not be null");
  spec_.workload.kind.clear();
  spec_.workload.factory = one_shot_factory(std::move(program));
  return *this;
}

SystemBuilder& SystemBuilder::policy_none() {
  spec_.policy = spec::NoCheckpoint{};
  return *this;
}

SystemBuilder& SystemBuilder::policy_hibernus(checkpoint::InterruptPolicy::Config config) {
  spec_.policy = spec::Hibernus{config};
  return *this;
}

SystemBuilder& SystemBuilder::policy_hibernus_pp(
    std::optional<checkpoint::HibernusPlusPlusPolicy::PlusConfig> config) {
  spec_.policy = spec::HibernusPlusPlus{std::move(config)};
  return *this;
}

SystemBuilder& SystemBuilder::policy_quickrecall(
    checkpoint::InterruptPolicy::Config config) {
  spec_.policy = spec::QuickRecall{config};
  return *this;
}

SystemBuilder& SystemBuilder::policy_nvp(checkpoint::InterruptPolicy::Config config) {
  spec_.policy = spec::Nvp{config};
  return *this;
}

SystemBuilder& SystemBuilder::policy_mementos(checkpoint::MementosPolicy::Config config) {
  spec_.policy = spec::Mementos{config};
  return *this;
}

SystemBuilder& SystemBuilder::policy_burst(taskmodel::BurstTaskPolicy::Config config) {
  spec_.policy = spec::BurstTask{config};
  return *this;
}

SystemBuilder& SystemBuilder::policy_adaptive_buffer(
    taskmodel::AdaptiveBufferPolicy::Config config) {
  spec_.policy = spec::AdaptiveBuffer{config};
  return *this;
}

SystemBuilder& SystemBuilder::policy(std::unique_ptr<checkpoint::PolicyBase> policy) {
  EDC_CHECK(policy != nullptr, "policy must not be null");
  // The instance is shared across builds through a forwarding shim, so a
  // caller-held pointer keeps observing the policy driven by the system.
  auto shared = std::shared_ptr<checkpoint::PolicyBase>(std::move(policy));
  spec_.policy = spec::CustomPolicy{
      [shared](const std::function<Farads()>&,
               Farads) -> std::unique_ptr<checkpoint::PolicyBase> {
        struct Shim final : checkpoint::PolicyBase {
          std::shared_ptr<checkpoint::PolicyBase> inner;
          void attach(mcu::Mcu& m) override { inner->attach(m); }
          void on_boot(mcu::Mcu& m, Seconds t) override { inner->on_boot(m, t); }
          void on_comparator(mcu::Mcu& m, const circuit::ComparatorEvent& e) override {
            inner->on_comparator(m, e);
          }
          void on_boundary(mcu::Mcu& m, workloads::Boundary b, Seconds t) override {
            inner->on_boundary(m, b, t);
          }
          void on_save_complete(mcu::Mcu& m, Seconds t) override {
            inner->on_save_complete(m, t);
          }
          void on_restore_complete(mcu::Mcu& m, Seconds t) override {
            inner->on_restore_complete(m, t);
          }
          void on_power_loss(mcu::Mcu& m, Seconds t) override {
            inner->on_power_loss(m, t);
          }
          void on_workload_complete(mcu::Mcu& m, Seconds t) override {
            inner->on_workload_complete(m, t);
          }
          [[nodiscard]] std::string name() const override { return inner->name(); }
        };
        auto shim = std::make_unique<Shim>();
        shim->inner = shared;
        return shim;
      }};
  return *this;
}

SystemBuilder& SystemBuilder::governor_power_neutral(
    neutral::McuDfsGovernor::Config config) {
  spec_.governor = std::move(config);
  return *this;
}

SystemBuilder& SystemBuilder::mcu_params(const mcu::McuParams& params) {
  spec_.mcu = params;
  return *this;
}

SystemBuilder& SystemBuilder::snapshot_peripherals(bool include) {
  spec_.snapshot_peripherals = include;
  return *this;
}

SystemBuilder& SystemBuilder::sim_config(const sim::SimConfig& config) {
  spec_.sim = config;
  return *this;
}

SystemBuilder& SystemBuilder::probe(Seconds interval) {
  EDC_CHECK(interval > 0.0, "probe interval must be positive");
  spec_.sim.probe_interval = interval;
  return *this;
}

EnergyDrivenSystem SystemBuilder::build() { return spec::instantiate(spec_); }

}  // namespace edc::core
