// The paper's taxonomy of computing systems (Fig 2).
//
// Two aspects classify a system (§II): how much energy storage it contains,
// and whether operation can be sustained despite an intermittent supply.
// Four overlapping classes result:
//
//  * energy-neutral: storage buffers supply/consumption so Eq 1 holds over
//    a period T and Eq 2 (V_CC >= V_min) is never violated; if Eq 2 is
//    violated the system fails.
//  * transient:      correct operation *despite* Eq 2 violations (state
//    survives outages).
//  * power-neutral:  consumption is modulated at run time to match the
//    instantaneous harvested power (Eq 3), feasible only with (near) zero
//    buffering.
//  * energy-driven:  the energy environment was a first-class design input
//    (the shaded region of Fig 2: transient and/or power-neutral systems
//    and minimal-storage designs).
#pragma once

#include <string>
#include <vector>

#include "edc/common/units.h"

namespace edc::core {

enum class AdaptationKind {
  none,        ///< fixed consumption profile
  task_based,  ///< buffers enough energy for one atomic task (right of arc)
  continuous,  ///< adapts within a task / via checkpoints (left of arc)
};

[[nodiscard]] const char* to_string(AdaptationKind kind) noexcept;

/// Facts about a system, from which its classes follow.
struct SystemDescriptor {
  std::string name;
  /// Total buffered energy the design relies on (storage + decoupling), J.
  Joules storage = 0.0;
  /// Deliberately added storage element (battery/supercap), as opposed to
  /// parasitic/decoupling capacitance only.
  bool added_storage = false;
  /// Designed to satisfy Eq 1 over some period T via buffering.
  bool relies_on_eq1 = false;
  /// Operates correctly despite V_CC < V_min (Eq 2 violations).
  bool survives_outage = false;
  /// Modulates its own power consumption at run time.
  bool modulates_power = false;
  AdaptationKind adaptation = AdaptationKind::none;
  /// The energy environment/subsystem was an input to the system design.
  bool harvesting_in_design = false;
};

struct Classification {
  bool energy_neutral = false;
  bool transient = false;
  bool power_neutral = false;
  bool energy_driven = false;
  /// Position along the Fig 2 storage axis: log10(storage / 1 J).
  double storage_log10_j = 0.0;
  /// Below the practical ("Theoretical") minimum arc — decoupling/parasitic
  /// energy only.
  bool at_practical_minimum = false;
};

/// Storage below which run-time power matching is physically possible
/// (Eq 3 requires T -> 0, i.e. negligible buffering).
inline constexpr Joules kPowerNeutralStorageLimit = 0.1;

/// Storage of bare decoupling/parasitic capacitance (the practical floor).
inline constexpr Joules kPracticalMinimumStorage = 100e-6;

[[nodiscard]] Classification classify(const SystemDescriptor& descriptor);

/// The systems the paper places on Fig 2, with representative storage
/// magnitudes, in the order discussed in §II.
[[nodiscard]] std::vector<SystemDescriptor> canonical_catalogue();

}  // namespace edc::core
