// Diode rectifier front-ends coupling an AC Thevenin source to the supply
// node (Fig 7 / Fig 8 operate a system directly from a half-wave rectified
// source).
#pragma once

#include <string>

#include "edc/circuit/supply_driver.h"
#include "edc/trace/source.h"

namespace edc::circuit {

enum class RectifierKind {
  half_wave,  ///< single diode: conducts on positive half-cycles only.
  full_wave,  ///< diode bridge: conducts on both half-cycles, two diode drops.
};

struct RectifierParams {
  RectifierKind kind = RectifierKind::half_wave;
  Volts diode_drop = 0.25;  ///< forward drop per diode (Schottky typical).
};

/// Couples a trace::VoltageSource through a rectifier into the supply node.
///
/// Conduction model: the diode(s) conduct when the rectified open-circuit
/// voltage exceeds the node voltage by the total diode drop; the current is
/// then limited by the source's series resistance:
///
///   i = max(0, (v_rect(t) - v_drop_total - v_node) / R_series)
class RectifiedSourceDriver final : public SupplyDriver {
 public:
  RectifiedSourceDriver(const trace::VoltageSource& source, RectifierParams params);

  [[nodiscard]] Amps current_into(Volts v_node, Seconds t) const override;
  /// Conduction needs the rectified open-circuit voltage to exceed the node
  /// voltage, so the driver is quiet while the source stays inside the band
  /// the diode drop + v_floor define; delegates to the source's
  /// bounded_until activity hint.
  [[nodiscard]] Seconds quiescent_until(Volts v_floor, Seconds t) const override;
  /// Charge-span certification: while the source certifies a constant
  /// open-circuit voltage (VoltageSource::constant_until), the rectified
  /// output is the constant Thevenin form the charge closed form needs —
  /// every DC stretch and square-wave high phase becomes one analytic
  /// charging ramp for the quiescent engine.
  [[nodiscard]] ChargeSpanCert plan_charge_span(Seconds t) const override;
  /// Ramp-span certification: while the source certifies a chord whose
  /// whole interval envelope stays sign-definite beyond the diode drop(s)
  /// (VoltageSource::linear_until), the max(., 0) clamp provably never
  /// engages and the rectified output is the affine Thevenin form the
  /// linear-ramp closed form needs — sine arcs, gust crests and trace
  /// cells become analytic charging ramps for the quiescent engine.
  [[nodiscard]] RampSpanCert plan_ramp_span(Seconds t,
                                            Seconds horizon) const override;
  /// Batch sampling (DriverSample): the rectified open-circuit voltage and
  /// the series resistance are the only source-dependent terms of
  /// current_into, so lanes sharing this source evaluate it once per
  /// substep instant and reconstruct their currents bit-identically.
  [[nodiscard]] bool batchable() const noexcept override { return true; }
  [[nodiscard]] DriverSample batch_sample(Seconds t) const override;
  [[nodiscard]] std::string name() const override;

  /// The rectified open-circuit voltage (before the node interaction); this
  /// is the "half-wave rectified sine-wave voltage" trace of Fig 7.
  [[nodiscard]] Volts rectified_open_circuit(Seconds t) const;

 private:
  const trace::VoltageSource* source_;  // non-owning; outlives the driver
  RectifierParams params_;
};

/// Couples a trace::PowerSource through a DC/DC harvester converter into the
/// supply node. The converter delivers eta * P_available as long as the node
/// is below its regulation ceiling, with a current compliance limit.
class HarvesterPowerDriver final : public SupplyDriver {
 public:
  struct Params {
    double efficiency = 0.80;   ///< converter efficiency (0, 1].
    Volts v_ceiling = 5.0;      ///< output regulation ceiling (shunts above).
    Amps i_max = 0.5;           ///< converter current compliance.
    Volts v_floor = 0.3;        ///< below this the converter output is current-limited.
  };

  HarvesterPowerDriver(const trace::PowerSource& source, Params params);

  [[nodiscard]] Amps current_into(Volts v_node, Seconds t) const override;
  /// Zero available power means zero output current at any node voltage;
  /// delegates to the source's dormant_until activity hint.
  [[nodiscard]] Seconds quiescent_until(Volts v_floor, Seconds t) const override;
  /// Batch sampling (DriverSample): the efficiency-scaled available power
  /// is the only source-dependent term of current_into; the converter
  /// limits (ceiling, compliance, floor) are per-driver constants.
  [[nodiscard]] bool batchable() const noexcept override { return true; }
  [[nodiscard]] DriverSample batch_sample(Seconds t) const override;
  [[nodiscard]] std::string name() const override;

 private:
  const trace::PowerSource* source_;  // non-owning; outlives the driver
  Params params_;
};

}  // namespace edc::circuit
