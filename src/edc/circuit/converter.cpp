#include "edc/circuit/converter.h"

#include <algorithm>

#include "edc/common/check.h"

namespace edc::circuit {

Converter::Converter(double peak_efficiency, Watts quiescent_power)
    : peak_efficiency_(peak_efficiency), quiescent_power_(quiescent_power) {
  EDC_CHECK(peak_efficiency > 0.0 && peak_efficiency <= 1.0,
            "peak efficiency must be in (0,1]");
  EDC_CHECK(quiescent_power >= 0.0, "quiescent power must be non-negative");
}

Watts Converter::convert(Watts input) const {
  EDC_CHECK(input >= 0.0, "input power must be non-negative");
  return input * efficiency(input);
}

double Converter::efficiency(Watts input) const {
  if (input <= 0.0) return 0.0;
  return peak_efficiency_ * input / (input + quiescent_power_);
}

EnergyBuffer::EnergyBuffer(Joules capacity, Joules initial, double charge_efficiency)
    : capacity_(capacity), level_(initial), charge_efficiency_(charge_efficiency) {
  EDC_CHECK(capacity > 0.0, "capacity must be positive");
  EDC_CHECK(initial >= 0.0 && initial <= capacity, "initial level out of range");
  EDC_CHECK(charge_efficiency > 0.0 && charge_efficiency <= 1.0,
            "charge efficiency must be in (0,1]");
}

Joules EnergyBuffer::charge(Joules input) {
  EDC_CHECK(input >= 0.0, "charge must be non-negative");
  const Joules headroom = capacity_ - level_;
  const Joules absorbable_source_side = headroom / charge_efficiency_;
  const Joules taken = std::min(input, absorbable_source_side);
  level_ += taken * charge_efficiency_;
  return taken;
}

Joules EnergyBuffer::discharge(Joules wanted) {
  EDC_CHECK(wanted >= 0.0, "discharge must be non-negative");
  const Joules given = std::min(wanted, level_);
  level_ -= given;
  return given;
}

}  // namespace edc::circuit
