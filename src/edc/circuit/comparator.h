// Voltage comparators with hysteresis.
//
// Hibernus (§III) is interrupt-driven: a comparator watching V_CC fires when
// the supply decays through the hibernate threshold V_H, and again when it
// recovers through the restore threshold V_R. This models that analog block.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "edc/common/units.h"

namespace edc::circuit {

struct ChargeSolution;
struct DecaySolution;
struct LinearRampSolution;

enum class Edge { rising, falling };

struct ComparatorEvent {
  std::string name;  ///< comparator label, e.g. "VH" or "VR"
  Edge edge = Edge::falling;
  Seconds time = 0.0;  ///< interpolated crossing instant
  Volts threshold = 0.0;
};

/// One comparator: output is high when v > threshold (+/- hysteresis/2).
class Comparator {
 public:
  Comparator(std::string name, Volts threshold, Volts hysteresis = 0.0);

  /// Examines the voltage transition (v_prev at t_prev) -> (v_now at t_now)
  /// and returns the crossing event if the output toggled. Linear
  /// interpolation yields the crossing instant.
  std::optional<ComparatorEvent> update(Volts v_prev, Seconds t_prev, Volts v_now,
                                        Seconds t_now);

  /// Re-arms the comparator to the state implied by `v` with no event.
  void reset(Volts v);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Volts threshold() const noexcept { return threshold_; }
  void set_threshold(Volts threshold);
  [[nodiscard]] bool output() const noexcept { return output_high_; }

  /// The trip levels update() compares against (threshold +/- half the
  /// hysteresis band) — the quiescent engine plans analytic crossings
  /// against exactly these.
  [[nodiscard]] Volts rising_trip() const noexcept { return threshold_ + hysteresis_ / 2; }
  [[nodiscard]] Volts falling_trip() const noexcept { return threshold_ - hysteresis_ / 2; }

 private:
  std::string name_;
  Volts threshold_;
  Volts hysteresis_;
  bool output_high_ = false;
};

/// A bank of comparators sharing the supply-node voltage; returns all events
/// of a step ordered by interpolated time.
class ComparatorBank {
 public:
  /// Adds a comparator and returns its index.
  std::size_t add(Comparator comparator);

  [[nodiscard]] Comparator& at(std::size_t index) { return comparators_.at(index); }
  [[nodiscard]] const Comparator& at(std::size_t index) const {
    return comparators_.at(index);
  }
  [[nodiscard]] std::size_t size() const noexcept { return comparators_.size(); }

  std::vector<ComparatorEvent> update(Volts v_prev, Seconds t_prev, Volts v_now,
                                      Seconds t_now);
  void reset(Volts v);

  /// Span-planning API for the quiescent engine (sim/quiescent_engine.h):
  /// the earliest instant any comparator in the bank would toggle while the
  /// supply follows the monotonically-decaying `decay` from decay.v0. Only
  /// falling trips of currently-high outputs can fire on a decay (a rising
  /// trip needs the voltage to increase, and a trip at or above v0 needs a
  /// previous sample strictly above it, which a decay from v0 never
  /// produces again), so this is the exact analytic next-event time:
  /// +infinity when no comparator can toggle on this trajectory. When the
  /// crossing exists, `trip_out` (if non-null) receives its trip voltage —
  /// the level a planned span must provably stay above so the crossing step
  /// still sees the v_prev > trip transition when fine stepping resumes.
  [[nodiscard]] Seconds plan_falling_crossing(const DecaySolution& decay,
                                              Volts* trip_out = nullptr) const;

  /// The charging mirror of plan_falling_crossing: the earliest instant any
  /// comparator would toggle while the supply follows the monotonically
  /// *rising* `charge` trajectory from charge.v0. Only rising trips of
  /// currently-low outputs strictly above v0 can fire on a rise (a falling
  /// trip needs the voltage to decrease, and a trip at or below v0 needs a
  /// previous sample strictly below it, which a rise from v0 never produces
  /// again), so the earliest crossing belongs to the lowest such trip:
  /// +infinity when no comparator can toggle (including trips the asymptote
  /// never reaches). `trip_out` receives the trip voltage a planned span
  /// must provably stay *below* so the crossing step still sees the
  /// v_prev < trip transition when fine stepping resumes.
  [[nodiscard]] Seconds plan_rising_crossing(const ChargeSolution& charge,
                                             Volts* trip_out = nullptr) const;

  /// The interval-certified mirror for *non-monotone* linear-ramp
  /// trajectories (circuit::LinearRampSolution), where the modeled voltage
  /// may additionally deviate from the true node voltage by up to
  /// `err_pad` (>= 0, the ramp certificate's envelope). A toggle in either
  /// direction requires the true voltage to touch the armed trip, and the
  /// true voltage stays within err_pad of the model — so the first instant
  /// the model *enters* the band [trip - err_pad, trip + err_pad] bounds
  /// every possible fire from below. Unlike the monotone planners no
  /// comparator can be ruled out by its output state alone (a ramp can dip
  /// and recross), so every armed trip is checked against the band-entry
  /// rule; returns 0 when some trip's band already contains the ramp's
  /// start (no span is certifiable), +infinity when no comparator can
  /// toggle within [0, t_max]. `trip_out` receives the binding trip, which
  /// a planned span's end voltage must provably stay err_pad clear of.
  [[nodiscard]] Seconds plan_ramp_crossing(const LinearRampSolution& ramp,
                                           Volts err_pad, Seconds t_max,
                                           Volts* trip_out = nullptr) const;

 private:
  std::vector<Comparator> comparators_;
};

}  // namespace edc::circuit
