// Power-domain conversion components for energy-neutral systems (Fig 3):
// the efficiency chain between harvester, storage and load.
#pragma once

#include <vector>

#include "edc/common/units.h"

namespace edc::circuit {

/// A DC/DC converter with a load-dependent efficiency curve: efficiency is
/// poor at very light load (quiescent-dominated) and flattens near its peak.
/// Modelled as eta(p) = eta_peak * p / (p + p_quiescent_equiv).
class Converter {
 public:
  Converter(double peak_efficiency, Watts quiescent_power);

  /// Output power for a given input power.
  [[nodiscard]] Watts convert(Watts input) const;

  /// Efficiency at a given input power (0 when input is 0).
  [[nodiscard]] double efficiency(Watts input) const;

 private:
  double peak_efficiency_;
  Watts quiescent_power_;
};

/// An ideal-storage element in the power domain (used by the energy-neutral
/// controller): tracks stored energy between 0 and capacity, with round-trip
/// efficiency applied on charge.
class EnergyBuffer {
 public:
  EnergyBuffer(Joules capacity, Joules initial, double charge_efficiency = 0.95);

  /// Offers `input` joules for storage; returns the amount actually absorbed
  /// (before efficiency loss), i.e. the amount removed from the source side.
  Joules charge(Joules input);

  /// Requests `wanted` joules; returns the amount actually delivered.
  Joules discharge(Joules wanted);

  [[nodiscard]] Joules level() const noexcept { return level_; }
  [[nodiscard]] Joules capacity() const noexcept { return capacity_; }
  [[nodiscard]] double state_of_charge() const noexcept { return level_ / capacity_; }
  [[nodiscard]] bool empty() const noexcept { return level_ <= 0.0; }

 private:
  Joules capacity_;
  Joules level_;
  double charge_efficiency_;
};

}  // namespace edc::circuit
