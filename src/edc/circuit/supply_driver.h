// Interfaces between sources, the supply node, and loads.
//
// The supply node is the single electrical node of Fig 4: harvester output,
// storage/decoupling capacitance, and the computational load all meet here.
// Anything that pushes current in implements SupplyDriver; anything that
// draws current implements Load.
#pragma once

#include <limits>
#include <string>

#include "edc/common/units.h"

namespace edc::circuit {

/// Certificate for the quiescent engine's charge-span planner
/// (sim::QuiescentEngine): over [t, until) the driver's injected current is
/// *exactly* the rectified-Thevenin form
///
///   current_into(v, t') == max(0, (v_source - v) / r_series)
///
/// with both parameters constant. Unlike quiescent_until's quiet claim this
/// is an exactness contract — the engine substitutes the closed-form
/// rectifier+RC charge trajectory (circuit::ChargeSolution) for the fine
/// path's substepping across the whole window, so "approximately constant"
/// would corrupt macro runs. `valid == false` claims nothing.
struct ChargeSpanCert {
  bool valid = false;
  Volts v_source = 0.0;  ///< constant rectified open-circuit voltage (>= 0)
  Ohms r_series = 0.0;   ///< series resistance (> 0 when valid)
  Seconds until = 0.0;   ///< certificate holds on [t, until)
};

/// Certificate for the quiescent engine's *ramp*-span planner: over
/// [t, until) the driver's injected current is the rectified-Thevenin form
///
///   current_into(v, t') == (vs(t') - v) / r_series   while vs(t') > v
///
/// where the rectified open-circuit voltage vs tracks the affine chord
///
///   v_source0 + slope * (t' - t) + [err_lo, err_hi]
///
/// and *provably never engages the rectifier clamp* within that envelope
/// (the sign-definiteness is certified at issue time, so the piecewise
/// max(0, .) never bends the affine form). Unlike ChargeSpanCert this is
/// an interval contract, not an exactness contract: the chord may deviate
/// from the true source within the certified envelope, and the engine's
/// ICP-style contractor re-queries with a smaller horizon until the
/// envelope fits its span tolerance before committing a jump.
/// `valid == false` claims nothing.
struct RampSpanCert {
  bool valid = false;
  Volts v_source0 = 0.0;  ///< rectified chord value at the query instant
  double slope = 0.0;     ///< chord slope [V/s]
  Volts err_lo = 0.0;     ///< envelope low side (<= 0)
  Volts err_hi = 0.0;     ///< envelope high side (>= 0)
  Ohms r_series = 0.0;    ///< series resistance (> 0 when valid)
  Seconds until = 0.0;    ///< certificate holds on [t, until)
};

/// One shared source evaluation for the batched SoA node step
/// (SupplyNode::step_lanes): the source-dependent terms of current_into at
/// a single instant, factored out so many lanes whose source axes agree
/// can evaluate the (possibly expensive) source once and broadcast. The
/// exactness contract matches ChargeSpanCert's spirit: reconstructing the
/// per-lane current from the sample with the alternative-specific formula
/// below must reproduce current_into(v, t) *bit-for-bit* for every node
/// voltage v >= 0 — the batch runner's results are differential-tested
/// for bit-identity against the scalar path (tests/batch_diff_test.cpp).
///
///   quiet:      i = 0
///   rectified:  i = (v_open <= v) ? 0 : (v_open - v) / r_series
///   harvester:  i = (v >= v_ceiling) ? 0
///             : (power <= 0)         ? 0
///             : min(power / max(v, v_floor), i_max)
struct DriverSample {
  enum class Kind : std::uint8_t {
    none,       ///< driver does not support batch sampling
    quiet,      ///< injects nothing at this instant regardless of v
    rectified,  ///< rectified-Thevenin form (RectifiedSourceDriver)
    harvester,  ///< power-envelope converter form (HarvesterPowerDriver)
  };
  Kind kind = Kind::none;
  // Kind::rectified
  Volts v_open = 0.0;   ///< rectified open-circuit voltage at this instant
  Ohms r_series = 0.0;  ///< source series resistance (> 0)
  // Kind::harvester
  Watts power = 0.0;    ///< efficiency-scaled available power at this instant
  Volts v_ceiling = 0.0;
  Amps i_max = 0.0;
  Volts v_floor = 0.0;
};

class SupplyDriver {
 public:
  virtual ~SupplyDriver() = default;

  /// Current injected into the node when the node voltage is `v_node` at
  /// time `t`. Must be >= 0 (rectifiers/converters block reverse flow).
  [[nodiscard]] virtual Amps current_into(Volts v_node, Seconds t) const = 0;

  /// Event-horizon hint for the simulator's quiescent fast path and the
  /// opt-in quiescent engine (sim::QuiescentEngine): the latest time u >= t such
  /// that current_into(v, t') is *guaranteed* to be 0 at every instant
  /// t' of [t, u) for every node voltage v >= v_floor. (Injected current
  /// never increases with node voltage, so the caller only needs a lower
  /// bound on the node trajectory over the span.) The default claims
  /// nothing — returning t forces the caller to sample current_into —
  /// which is always correct; overrides must err quiet-side only, and may
  /// return +infinity for a permanently dead source.
  [[nodiscard]] virtual Seconds quiescent_until(Volts v_floor, Seconds t) const {
    (void)v_floor;
    return t;
  }

  /// Piecewise-constant certification for charge-span planning (see
  /// ChargeSpanCert). The default claims nothing, which is always correct;
  /// overrides must be exact over the certified window and may err
  /// short-side only.
  [[nodiscard]] virtual ChargeSpanCert plan_charge_span(Seconds t) const {
    (void)t;
    return {};
  }

  /// Piecewise-linear interval certification for ramp-span planning (see
  /// RampSpanCert). `horizon` caps the window the caller can use — issuing
  /// a shorter certificate is always sound, and the caller re-queries with
  /// smaller horizons while the envelope exceeds its tolerance. The
  /// default claims nothing, which is always correct.
  [[nodiscard]] virtual RampSpanCert plan_ramp_span(Seconds t,
                                                    Seconds horizon) const {
    (void)t;
    (void)horizon;
    return {};
  }

  /// Whether batch_sample() yields usable samples (the batched sweep
  /// runner falls back to the scalar path otherwise).
  [[nodiscard]] virtual bool batchable() const noexcept { return false; }

  /// The shared source evaluation of the batched node step (see
  /// DriverSample): all source-dependent terms of current_into(., t),
  /// evaluated once per substep instant and broadcast across lanes. The
  /// default claims nothing (Kind::none); overrides must honour the
  /// bit-identity contract documented on DriverSample.
  [[nodiscard]] virtual DriverSample batch_sample(Seconds t) const {
    (void)t;
    return {};
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

class Load {
 public:
  virtual ~Load() = default;

  /// Current drawn from the node at node voltage `v_node`, time `t`.
  /// Must be >= 0.
  [[nodiscard]] virtual Amps current_draw(Volts v_node, Seconds t) const = 0;
};

/// A fixed resistive load (used in tests against the analytic RC solution).
class ResistiveLoad final : public Load {
 public:
  explicit ResistiveLoad(Ohms resistance);

  [[nodiscard]] Amps current_draw(Volts v_node, Seconds) const override {
    return v_node > 0.0 ? v_node / resistance_ : 0.0;
  }

 private:
  Ohms resistance_;
};

/// A constant-current load (ideal active MCU approximation).
class ConstantCurrentLoad final : public Load {
 public:
  explicit ConstantCurrentLoad(Amps current);

  [[nodiscard]] Amps current_draw(Volts, Seconds) const override { return current_; }

 private:
  Amps current_;
};

/// A driver that injects nothing (harvester absent / night).
class NullDriver final : public SupplyDriver {
 public:
  [[nodiscard]] Amps current_into(Volts, Seconds) const override { return 0.0; }
  [[nodiscard]] Seconds quiescent_until(Volts, Seconds) const override {
    return std::numeric_limits<Seconds>::infinity();
  }
  [[nodiscard]] bool batchable() const noexcept override { return true; }
  [[nodiscard]] DriverSample batch_sample(Seconds) const override {
    DriverSample sample;
    sample.kind = DriverSample::Kind::quiet;
    return sample;
  }
  [[nodiscard]] std::string name() const override { return "null"; }
};

}  // namespace edc::circuit
