#include "edc/circuit/rectifier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edc/common/check.h"

namespace edc::circuit {

RectifiedSourceDriver::RectifiedSourceDriver(const trace::VoltageSource& source,
                                             RectifierParams params)
    : source_(&source), params_(params) {
  EDC_CHECK(params.diode_drop >= 0.0, "diode drop must be non-negative");
}

Volts RectifiedSourceDriver::rectified_open_circuit(Seconds t) const {
  const Volts v = source_->open_circuit_voltage(t);
  switch (params_.kind) {
    case RectifierKind::half_wave:
      return std::max(v - params_.diode_drop, 0.0);
    case RectifierKind::full_wave:
      return std::max(std::abs(v) - 2.0 * params_.diode_drop, 0.0);
  }
  return 0.0;
}

Amps RectifiedSourceDriver::current_into(Volts v_node, Seconds t) const {
  const Volts v_rect = rectified_open_circuit(t);
  if (v_rect <= v_node) return 0.0;
  return (v_rect - v_node) / source_->series_resistance();
}

namespace {

/// End of the *chord-certified dark window* from t: the last instant the
/// source's affine chord certificate (VoltageSource::linear_until), widened
/// by its interval envelope, provably stays at or below `ceiling` (and at
/// or above -`ceiling` when `two_sided`). Returns t when no window is
/// certifiable. This is what lets an AC source's sub-conduction arcs — the
/// trough half-cycles a cell-granular band index cannot see — feed the
/// decay-span planners: the certificate is a proof, so any envelope width
/// works, but a too-wide probe can drown a real dark window in its own
/// ~h^2 error; geometrically tighter probes recover it. A chord *rising
/// toward* the ceiling still certifies its prefix up to the envelope's
/// crossing, so the approach to a conduction edge is claimed too.
Seconds chord_dark_window(const trace::VoltageSource& source, Volts ceiling,
                          bool two_sided, Seconds t) {
  Seconds horizon = 8e-3;
  for (int attempt = 0; attempt < 4; ++attempt, horizon *= 0.25) {
    const trace::VoltageSource::LinearCert cert = source.linear_until(t, horizon);
    if (!cert.valid || !(cert.until > t)) return t;
    // The chord starts on the actual source sample, so a start value
    // outside the band means the source conducts *right now* — no tighter
    // envelope can change that, and this probe is the per-fine-step cost
    // during conducting arcs. Bail on the first attempt.
    if (cert.value > ceiling || (two_sided && cert.value < -ceiling)) return t;
    const Volts hi0 = cert.value + cert.err_hi;
    const Volts lo0 = cert.value + cert.err_lo;
    if (!(hi0 <= ceiling) || (two_sided && !(lo0 >= -ceiling))) {
      continue;  // a tighter envelope may still clear the band
    }
    Seconds s_max = cert.until - t;
    if (cert.slope > 0.0) {
      s_max = std::min(s_max, (ceiling - hi0) / cert.slope);
    } else if (cert.slope < 0.0 && two_sided) {
      s_max = std::min(s_max, (-ceiling - lo0) / cert.slope);
    }
    if (s_max > 0.0) return t + s_max;
  }
  return t;
}

}  // namespace

Seconds RectifiedSourceDriver::quiescent_until(Volts v_floor, Seconds t) const {
  if (v_floor < 0.0) v_floor = 0.0;  // the node clamps at ground
  // current_into is zero iff rectified_open_circuit(t) <= v_node, and the
  // rectified voltage only shrinks under the |.| / max(., 0) mapping, so a
  // band on the raw open-circuit voltage is what the source must promise:
  //   half-wave:  v_oc - drop <= v_floor          (no lower bound needed)
  //   full-wave:  |v_oc| - 2*drop <= v_floor
  // The source's own band query answers from its quiet structure (exact
  // dead/stalled stretches); when it has no window, a chord certificate
  // can still prove the sub-conduction arcs dark.
  switch (params_.kind) {
    case RectifierKind::half_wave: {
      const Volts ceiling = v_floor + params_.diode_drop;
      const Seconds u = source_->bounded_until(
          -std::numeric_limits<Volts>::infinity(), ceiling, t);
      if (u > t) return u;
      return chord_dark_window(*source_, ceiling, /*two_sided=*/false, t);
    }
    case RectifierKind::full_wave: {
      const Volts ceiling = v_floor + 2.0 * params_.diode_drop;
      const Seconds u = source_->bounded_until(-ceiling, ceiling, t);
      if (u > t) return u;
      return chord_dark_window(*source_, ceiling, /*two_sided=*/true, t);
    }
  }
  return t;
}

ChargeSpanCert RectifiedSourceDriver::plan_charge_span(Seconds t) const {
  Volts level = 0.0;
  const Seconds until = source_->constant_until(t, &level);
  if (!(until > t)) return {};
  ChargeSpanCert cert;
  cert.valid = true;
  cert.r_series = source_->series_resistance();
  // Rectify the certified level exactly as current_into does, so the
  // engine's max(0, (v_source - v)/R) reproduces every substep sample.
  switch (params_.kind) {
    case RectifierKind::half_wave:
      cert.v_source = std::max(level - params_.diode_drop, 0.0);
      break;
    case RectifierKind::full_wave:
      cert.v_source = std::max(std::abs(level) - 2.0 * params_.diode_drop, 0.0);
      break;
  }
  cert.until = until;
  return cert;
}

RampSpanCert RectifiedSourceDriver::plan_ramp_span(Seconds t,
                                                   Seconds horizon) const {
  const trace::VoltageSource::LinearCert chord = source_->linear_until(t, horizon);
  if (!chord.valid || !(chord.until > t)) return {};
  const Seconds h = chord.until - t;
  // The chord is affine, so its certified extrema over the window sit at
  // the endpoints, widened by the interval envelope.
  const Volts lo_end = chord.value + std::min(0.0, chord.slope * h);
  const Volts hi_end = chord.value + std::max(0.0, chord.slope * h);
  const Volts chord_min = lo_end + chord.err_lo;
  const Volts chord_max = hi_end + chord.err_hi;
  RampSpanCert cert;
  cert.r_series = source_->series_resistance();
  cert.until = chord.until;
  switch (params_.kind) {
    case RectifierKind::half_wave: {
      // Provably above the drop throughout: max(v - drop, 0) never clamps,
      // so the rectified source is the chord shifted down by the drop.
      if (!(chord_min > params_.diode_drop)) return {};
      cert.valid = true;
      cert.v_source0 = chord.value - params_.diode_drop;
      cert.slope = chord.slope;
      cert.err_lo = chord.err_lo;
      cert.err_hi = chord.err_hi;
      return cert;
    }
    case RectifierKind::full_wave: {
      const Volts drop = 2.0 * params_.diode_drop;
      if (chord_min > drop) {  // positive-definite half
        cert.valid = true;
        cert.v_source0 = chord.value - drop;
        cert.slope = chord.slope;
        cert.err_lo = chord.err_lo;
        cert.err_hi = chord.err_hi;
        return cert;
      }
      if (chord_max < -drop) {  // negative-definite half: |.| flips the chord
        cert.valid = true;
        cert.v_source0 = -chord.value - drop;
        cert.slope = -chord.slope;
        cert.err_lo = -chord.err_hi;
        cert.err_hi = -chord.err_lo;
        return cert;
      }
      return {};
    }
  }
  return {};
}

DriverSample RectifiedSourceDriver::batch_sample(Seconds t) const {
  DriverSample sample;
  sample.kind = DriverSample::Kind::rectified;
  // rectified_open_circuit is exactly the value current_into(v, t) computes
  // before its node interaction, so the per-lane reconstruction
  // (v_open <= v ? 0 : (v_open - v) / r_series) is bit-identical.
  sample.v_open = rectified_open_circuit(t);
  sample.r_series = source_->series_resistance();
  return sample;
}

std::string RectifiedSourceDriver::name() const {
  return (params_.kind == RectifierKind::half_wave ? "halfwave(" : "fullwave(") +
         source_->name() + ")";
}

HarvesterPowerDriver::HarvesterPowerDriver(const trace::PowerSource& source,
                                           Params params)
    : source_(&source), params_(params) {
  EDC_CHECK(params.efficiency > 0.0 && params.efficiency <= 1.0,
            "efficiency must be in (0,1]");
  EDC_CHECK(params.v_ceiling > 0.0, "ceiling must be positive");
  EDC_CHECK(params.i_max > 0.0, "current limit must be positive");
  EDC_CHECK(params.v_floor > 0.0, "voltage floor must be positive");
}

Amps HarvesterPowerDriver::current_into(Volts v_node, Seconds t) const {
  if (v_node >= params_.v_ceiling) return 0.0;
  const Watts p = params_.efficiency * source_->available_power(t);
  if (p <= 0.0) return 0.0;
  const Volts v_eff = std::max(v_node, params_.v_floor);
  return std::min(p / v_eff, params_.i_max);
}

Seconds HarvesterPowerDriver::quiescent_until(Volts, Seconds t) const {
  return source_->dormant_until(t);
}

DriverSample HarvesterPowerDriver::batch_sample(Seconds t) const {
  DriverSample sample;
  sample.kind = DriverSample::Kind::harvester;
  // current_into only consults the source through eta * available_power(t);
  // sampling it unconditionally (current_into skips it above the ceiling)
  // is value-identical because the ceiling branch ignores the power term.
  sample.power = params_.efficiency * source_->available_power(t);
  sample.v_ceiling = params_.v_ceiling;
  sample.i_max = params_.i_max;
  sample.v_floor = params_.v_floor;
  return sample;
}

std::string HarvesterPowerDriver::name() const {
  return "harvester(" + source_->name() + ")";
}

ResistiveLoad::ResistiveLoad(Ohms resistance) : resistance_(resistance) {
  EDC_CHECK(resistance > 0.0, "resistance must be positive");
}

ConstantCurrentLoad::ConstantCurrentLoad(Amps current) : current_(current) {
  EDC_CHECK(current >= 0.0, "current must be non-negative");
}

}  // namespace edc::circuit
