#include "edc/circuit/rectifier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edc/common/check.h"

namespace edc::circuit {

RectifiedSourceDriver::RectifiedSourceDriver(const trace::VoltageSource& source,
                                             RectifierParams params)
    : source_(&source), params_(params) {
  EDC_CHECK(params.diode_drop >= 0.0, "diode drop must be non-negative");
}

Volts RectifiedSourceDriver::rectified_open_circuit(Seconds t) const {
  const Volts v = source_->open_circuit_voltage(t);
  switch (params_.kind) {
    case RectifierKind::half_wave:
      return std::max(v - params_.diode_drop, 0.0);
    case RectifierKind::full_wave:
      return std::max(std::abs(v) - 2.0 * params_.diode_drop, 0.0);
  }
  return 0.0;
}

Amps RectifiedSourceDriver::current_into(Volts v_node, Seconds t) const {
  const Volts v_rect = rectified_open_circuit(t);
  if (v_rect <= v_node) return 0.0;
  return (v_rect - v_node) / source_->series_resistance();
}

Seconds RectifiedSourceDriver::quiescent_until(Volts v_floor, Seconds t) const {
  if (v_floor < 0.0) v_floor = 0.0;  // the node clamps at ground
  // current_into is zero iff rectified_open_circuit(t) <= v_node, and the
  // rectified voltage only shrinks under the |.| / max(., 0) mapping, so a
  // band on the raw open-circuit voltage is what the source must promise:
  //   half-wave:  v_oc - drop <= v_floor          (no lower bound needed)
  //   full-wave:  |v_oc| - 2*drop <= v_floor
  switch (params_.kind) {
    case RectifierKind::half_wave: {
      const Volts ceiling = v_floor + params_.diode_drop;
      return source_->bounded_until(-std::numeric_limits<Volts>::infinity(),
                                    ceiling, t);
    }
    case RectifierKind::full_wave: {
      const Volts ceiling = v_floor + 2.0 * params_.diode_drop;
      return source_->bounded_until(-ceiling, ceiling, t);
    }
  }
  return t;
}

ChargeSpanCert RectifiedSourceDriver::plan_charge_span(Seconds t) const {
  Volts level = 0.0;
  const Seconds until = source_->constant_until(t, &level);
  if (!(until > t)) return {};
  ChargeSpanCert cert;
  cert.valid = true;
  cert.r_series = source_->series_resistance();
  // Rectify the certified level exactly as current_into does, so the
  // engine's max(0, (v_source - v)/R) reproduces every substep sample.
  switch (params_.kind) {
    case RectifierKind::half_wave:
      cert.v_source = std::max(level - params_.diode_drop, 0.0);
      break;
    case RectifierKind::full_wave:
      cert.v_source = std::max(std::abs(level) - 2.0 * params_.diode_drop, 0.0);
      break;
  }
  cert.until = until;
  return cert;
}

DriverSample RectifiedSourceDriver::batch_sample(Seconds t) const {
  DriverSample sample;
  sample.kind = DriverSample::Kind::rectified;
  // rectified_open_circuit is exactly the value current_into(v, t) computes
  // before its node interaction, so the per-lane reconstruction
  // (v_open <= v ? 0 : (v_open - v) / r_series) is bit-identical.
  sample.v_open = rectified_open_circuit(t);
  sample.r_series = source_->series_resistance();
  return sample;
}

std::string RectifiedSourceDriver::name() const {
  return (params_.kind == RectifierKind::half_wave ? "halfwave(" : "fullwave(") +
         source_->name() + ")";
}

HarvesterPowerDriver::HarvesterPowerDriver(const trace::PowerSource& source,
                                           Params params)
    : source_(&source), params_(params) {
  EDC_CHECK(params.efficiency > 0.0 && params.efficiency <= 1.0,
            "efficiency must be in (0,1]");
  EDC_CHECK(params.v_ceiling > 0.0, "ceiling must be positive");
  EDC_CHECK(params.i_max > 0.0, "current limit must be positive");
  EDC_CHECK(params.v_floor > 0.0, "voltage floor must be positive");
}

Amps HarvesterPowerDriver::current_into(Volts v_node, Seconds t) const {
  if (v_node >= params_.v_ceiling) return 0.0;
  const Watts p = params_.efficiency * source_->available_power(t);
  if (p <= 0.0) return 0.0;
  const Volts v_eff = std::max(v_node, params_.v_floor);
  return std::min(p / v_eff, params_.i_max);
}

Seconds HarvesterPowerDriver::quiescent_until(Volts, Seconds t) const {
  return source_->dormant_until(t);
}

DriverSample HarvesterPowerDriver::batch_sample(Seconds t) const {
  DriverSample sample;
  sample.kind = DriverSample::Kind::harvester;
  // current_into only consults the source through eta * available_power(t);
  // sampling it unconditionally (current_into skips it above the ceiling)
  // is value-identical because the ceiling branch ignores the power term.
  sample.power = params_.efficiency * source_->available_power(t);
  sample.v_ceiling = params_.v_ceiling;
  sample.i_max = params_.i_max;
  sample.v_floor = params_.v_floor;
  return sample;
}

std::string HarvesterPowerDriver::name() const {
  return "harvester(" + source_->name() + ")";
}

ResistiveLoad::ResistiveLoad(Ohms resistance) : resistance_(resistance) {
  EDC_CHECK(resistance > 0.0, "resistance must be positive");
}

ConstantCurrentLoad::ConstantCurrentLoad(Amps current) : current_(current) {
  EDC_CHECK(current >= 0.0, "current must be non-negative");
}

}  // namespace edc::circuit
