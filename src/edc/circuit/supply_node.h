// The single supply node of an energy-driven system (Fig 4): total node
// capacitance (decoupling + parasitic + any added storage), driven by a
// SupplyDriver and discharged by a Load.
//
// Integration: semi-implicit Euler with fixed substeps. The node ODE is
//   C dV/dt = I_in(V, t) - I_load(V, t)
// which is stiff only through the source series resistance; the default
// substep keeps R_s*C >> dt_sub for every modelled source.
#pragma once

#include "edc/circuit/supply_driver.h"
#include "edc/common/units.h"

namespace edc::circuit {

/// Closed-form solution of the unpowered node decay
///
///   C dV/dt = -V/R_bleed - I_load,     V(0) = v0,  V clamped at ground,
///
/// i.e. the quiescent spans of Fig 7: no injected current, a parallel bleed
/// resistance, and a constant load current (the off-state MCU leakage, or
/// i_sleep while hibernating with live comparators). Produced by
/// SupplyNode::decay_from and consumed by sim::QuiescentEngine, which books
/// the exact continuum energy split instead of substepping and plans event
/// horizons from the inverse solve time_to_reach().
struct DecaySolution {
  Farads capacitance = 0.0;
  Ohms bleed = 0.0;  ///< 0 = no bleed path
  Amps load = 0.0;   ///< constant load current while V > 0
  Volts v0 = 0.0;

  /// Node voltage after `elapsed` seconds (clamped at 0).
  [[nodiscard]] Volts voltage_at(Seconds elapsed) const;

  /// When the trajectory reaches exactly 0 V (+infinity when it never
  /// does, e.g. a pure exponential bleed with no constant load).
  [[nodiscard]] Seconds time_to_zero() const;

  /// Inverse solve: the first instant the (monotonically decaying)
  /// trajectory reaches `v`, i.e. the exact comparator-crossing time of a
  /// falling threshold. 0 when v >= v0; +infinity when the decay never
  /// gets there (e.g. an exponential tail asked for a voltage at or below
  /// its asymptote). Inverse of voltage_at up to floating-point rounding.
  [[nodiscard]] Seconds time_to_reach(Volts v) const;

  /// Energy the constant load drew over [0, elapsed]: load * integral of V
  /// (the integral stops where V hits ground — a load draws nothing from a
  /// dead node). The bleed's share of the decay is the remainder
  /// 0.5*C*(v0^2 - V(elapsed)^2) - load_energy, so booking it that way
  /// closes the energy ledger exactly.
  [[nodiscard]] Joules load_energy(Seconds elapsed) const;
};

/// Closed-form solution of the *driven* node: a Thevenin source of constant
/// (rectified) open-circuit voltage conducting through its series
/// resistance against the bleed and a constant load current,
///
///   C dV/dt = (v_source - V)/r_series - V/R_bleed - I_load,   V(0) = v0,
///
/// i.e. the charging ramps of Fig 7: the supply is on, the MCU is off (or
/// parked in a comparator-watched low-power state), and the node climbs the
/// RC exponential toward the conduction equilibrium. Produced by
/// SupplyNode::charge_from for the window a SupplyDriver::plan_charge_span
/// certificate covers, and consumed by sim::QuiescentEngine, which books
/// the exact continuum energy split and plans event horizons from the
/// inverse solve time_to_reach() — the charging mirror of DecaySolution.
///
/// The linear ODE is monotone toward the asymptote
/// v_inf = (v_source/r_series - I_load) / G with G = 1/r_series + 1/R_bleed
/// and time constant tau = C/G. Started below v_source it stays below
/// (v_inf < v_source whenever the bleed or load draw anything, and is
/// approached from below otherwise), so the rectifier keeps conducting and
/// the closed form stays valid over the whole certified window. The engine
/// only plans *rising* trajectories (v0 < v_inf); the struct itself is
/// direction-agnostic.
struct ChargeSolution {
  Farads capacitance = 0.0;
  Volts v_source = 0.0;  ///< constant rectified open-circuit voltage
  Ohms r_series = 0.0;   ///< source series resistance (> 0)
  Ohms bleed = 0.0;      ///< 0 = no bleed path
  Amps load = 0.0;       ///< constant load current
  Volts v0 = 0.0;

  /// The conduction equilibrium v_inf the trajectory approaches.
  [[nodiscard]] Volts asymptote() const;

  /// The RC time constant C / (1/r_series + 1/bleed).
  [[nodiscard]] Seconds tau() const;

  /// Node voltage after `elapsed` seconds (clamped at ground).
  [[nodiscard]] Volts voltage_at(Seconds elapsed) const;

  /// Inverse solve: the first instant the monotone trajectory reaches `v` —
  /// the exact comparator/power-on crossing time of a rising threshold. 0
  /// when the start already satisfies it (v <= v0 on a rise, v >= v0 on a
  /// sag); +infinity when `v` lies beyond the asymptote. Inverse of
  /// voltage_at up to floating-point rounding.
  [[nodiscard]] Seconds time_to_reach(Volts v) const;

  /// Energy the constant load drew over [0, elapsed]: load * integral of V.
  [[nodiscard]] Joules load_energy(Seconds elapsed) const;

  /// Energy the bleed dissipated over [0, elapsed]: integral of V^2/R_b.
  /// Booking harvested = stored-energy delta + load_energy + bleed_energy
  /// closes the span's ledger exactly in the continuum.
  [[nodiscard]] Joules bleed_energy(Seconds elapsed) const;
};

/// Closed-form solution of the node driven by an *affine* Thevenin source:
/// the rectified open-circuit voltage ramps linearly over the window,
///
///   C dV/dt = (v_source0 + slope*t - V)/r_series - V/R_bleed - I_load,
///
/// i.e. a certified piecewise-linear source chord (a sine arc, a wind-gust
/// tail, one trace cell) instead of ChargeSolution's constant window. With
/// G = 1/r_series + 1/R_bleed and tau = C/G the trajectory is
///
///   V(t) = a + b*t + (v0 - a) e^{-t/tau},
///   b = slope / (r_series * G),   a = (v_source0/r_series - I_load - C*b)/G,
///
/// the affine particular solution plus a decaying transient. V'(t) is
/// monotone (single interior extremum at most), so the inverse solve walks
/// at most two monotone pieces with safeguarded bisection. Produced by
/// SupplyNode::ramp_from for the window a SupplyDriver::plan_ramp_span
/// certificate covers, and consumed by sim::QuiescentEngine, which books
/// the continuum energy split exactly like the constant-window spans.
struct LinearRampSolution {
  Farads capacitance = 0.0;
  Volts v_source0 = 0.0;  ///< rectified open-circuit voltage at span start
  double slope = 0.0;     ///< source ramp rate dVs/dt over the window [V/s]
  Ohms r_series = 0.0;    ///< source series resistance (> 0)
  Ohms bleed = 0.0;       ///< 0 = no bleed path
  Amps load = 0.0;        ///< constant load current
  Volts v0 = 0.0;

  /// The RC time constant C / (1/r_series + 1/bleed).
  [[nodiscard]] Seconds tau() const;

  /// Slope b of the affine particular solution a + b*t.
  [[nodiscard]] double drift() const;

  /// Offset a of the affine particular solution a + b*t.
  [[nodiscard]] Volts offset() const;

  /// Node voltage after `elapsed` seconds (clamped at ground; the engine
  /// certifies min_voltage > 0 before committing, so the clamp is inert
  /// over any planned span).
  [[nodiscard]] Volts voltage_at(Seconds elapsed) const;

  /// Inverse solve over [0, t_max]: the first instant the trajectory
  /// reaches `v`, or +infinity when it never does within the window. The
  /// trajectory is not monotone in general (the transient can overshoot
  /// the ramp), so the solve brackets the at-most-one interior extremum
  /// and bisects each monotone piece.
  [[nodiscard]] Seconds time_to_reach(Volts v, Seconds t_max) const;

  /// Minimum of the (unclamped) trajectory over [0, elapsed]: ground-clamp
  /// certification — a span is only valid while this stays above the node
  /// error envelope.
  [[nodiscard]] Volts min_voltage(Seconds elapsed) const;

  /// Maximum of the (unclamped) trajectory over [0, elapsed].
  [[nodiscard]] Volts max_voltage(Seconds elapsed) const;

  /// Minimum of the conduction margin Vs(t) - V(t) over [0, elapsed]:
  /// rectifier certification — the diode provably keeps conducting while
  /// this stays above the chord + node error envelopes.
  [[nodiscard]] Volts min_source_margin(Seconds elapsed) const;

  /// Energy the constant load drew over [0, elapsed]: load * integral of V.
  [[nodiscard]] Joules load_energy(Seconds elapsed) const;

  /// Energy the bleed dissipated over [0, elapsed]: integral of V^2/R_b.
  /// Booking harvested = stored-energy delta + load_energy + bleed_energy
  /// closes the span's ledger exactly in the continuum.
  [[nodiscard]] Joules bleed_energy(Seconds elapsed) const;
};

class SupplyNode {
 public:
  /// `capacitance` is the *total* node capacitance. `v_initial` is the node
  /// voltage at t = 0 (usually 0: system starts discharged).
  SupplyNode(Farads capacitance, Volts v_initial = 0.0);

  [[nodiscard]] Volts voltage() const noexcept { return voltage_; }
  [[nodiscard]] Farads capacitance() const noexcept { return capacitance_; }

  /// Stored energy 0.5*C*V^2.
  [[nodiscard]] Joules stored_energy() const noexcept {
    return 0.5 * capacitance_ * voltage_ * voltage_;
  }

  /// Energy accounting accumulated by one step() call.
  struct StepEnergy {
    Joules harvested = 0.0;   ///< delivered into the node by the driver
    Joules consumed = 0.0;    ///< drawn from the node by the load
    Joules dissipated = 0.0;  ///< lost in the bleed/board-leakage resistance
  };

  /// Board leakage: a resistor in parallel with the node (regulator
  /// quiescents, pull-ups, measurement dividers). 0 disables it. Real
  /// transient platforms rely on this bleed to fully discharge between
  /// supply bursts (cf. the decay-to-zero intervals in Fig 7).
  void set_bleed(Ohms bleed_resistance);
  [[nodiscard]] Ohms bleed() const noexcept { return bleed_; }

  /// Advances the node from `t` by `dt` using `substeps` semi-implicit Euler
  /// substeps. The load current is sampled at the start-of-substep voltage.
  StepEnergy step(Seconds t, Seconds dt, const SupplyDriver& driver,
                  const Load& load, int substeps = 4);

  /// Structure-of-arrays view over the node state of many *lockstep* lanes
  /// (batched sweeps, sim/batch_kernel.h): contiguous parallel arrays of
  /// `count` lanes, each lane an independent node advancing through the
  /// same (t, dt, substeps) schedule under the same driver. Per-lane
  /// capacitance/bleed may differ (the sweep's storage axes); the per-step
  /// load draw is hoisted by the caller (the MCU's state draw is constant
  /// across one step's substeps — nothing advances its state machine
  /// between them). The `harvested`/`consumed`/`dissipated` slots are
  /// *overwritten* with the step's energy split, mirroring StepEnergy.
  struct SoaLanes {
    std::size_t count = 0;
    double* v = nullptr;             ///< node voltage, in/out
    const double* capacitance = nullptr;
    const double* bleed = nullptr;   ///< 0 = no bleed path
    const double* i_load = nullptr;  ///< hoisted constant load draw over the step
    double* harvested = nullptr;     ///< out: StepEnergy.harvested per lane
    double* consumed = nullptr;      ///< out: StepEnergy.consumed per lane
    double* dissipated = nullptr;    ///< out: StepEnergy.dissipated per lane
  };

  /// The SoA mirror of step(): advances every lane by dt with the exact
  /// per-lane arithmetic of the scalar substep loop (same expression
  /// structure, no reassociation), but with the source evaluated *once*
  /// per substep instant through SupplyDriver::batch_sample and broadcast
  /// across lanes. Per-lane results are bit-identical to `count`
  /// independent step() calls (differential-tested in
  /// tests/batch_diff_test.cpp); the inner lane loops are omp-simd
  /// vectorizable because each lane is a pure element-wise recurrence.
  /// Precondition: driver.batchable().
  static void step_lanes(Seconds t, Seconds dt, const SupplyDriver& driver,
                         int substeps, const SoaLanes& lanes);

  /// Forces the node voltage (tests; initial conditions).
  void set_voltage(Volts v);

  /// The analytic decay this node follows from `v0` with no injected
  /// current and a constant `load` draw (see DecaySolution).
  [[nodiscard]] DecaySolution decay_from(Volts v0, Amps load) const;

  /// The analytic charge this node follows from `v0` while a constant
  /// rectified Thevenin source conducts into it (see ChargeSolution).
  [[nodiscard]] ChargeSolution charge_from(Volts v0, Volts v_source,
                                           Ohms r_series, Amps load) const;

  /// The analytic trajectory this node follows from `v0` while an *affine*
  /// rectified Thevenin source conducts into it (see LinearRampSolution).
  [[nodiscard]] LinearRampSolution ramp_from(Volts v0, Volts v_source0,
                                             double slope, Ohms r_series,
                                             Amps load) const;

 private:
  Farads capacitance_;
  Volts voltage_;
  Ohms bleed_ = 0.0;  // 0 = no bleed
};

}  // namespace edc::circuit
