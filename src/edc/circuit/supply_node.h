// The single supply node of an energy-driven system (Fig 4): total node
// capacitance (decoupling + parasitic + any added storage), driven by a
// SupplyDriver and discharged by a Load.
//
// Integration: semi-implicit Euler with fixed substeps. The node ODE is
//   C dV/dt = I_in(V, t) - I_load(V, t)
// which is stiff only through the source series resistance; the default
// substep keeps R_s*C >> dt_sub for every modelled source.
#pragma once

#include "edc/circuit/supply_driver.h"
#include "edc/common/units.h"

namespace edc::circuit {

class SupplyNode {
 public:
  /// `capacitance` is the *total* node capacitance. `v_initial` is the node
  /// voltage at t = 0 (usually 0: system starts discharged).
  SupplyNode(Farads capacitance, Volts v_initial = 0.0);

  [[nodiscard]] Volts voltage() const noexcept { return voltage_; }
  [[nodiscard]] Farads capacitance() const noexcept { return capacitance_; }

  /// Stored energy 0.5*C*V^2.
  [[nodiscard]] Joules stored_energy() const noexcept {
    return 0.5 * capacitance_ * voltage_ * voltage_;
  }

  /// Energy accounting accumulated by one step() call.
  struct StepEnergy {
    Joules harvested = 0.0;   ///< delivered into the node by the driver
    Joules consumed = 0.0;    ///< drawn from the node by the load
    Joules dissipated = 0.0;  ///< lost in the bleed/board-leakage resistance
  };

  /// Board leakage: a resistor in parallel with the node (regulator
  /// quiescents, pull-ups, measurement dividers). 0 disables it. Real
  /// transient platforms rely on this bleed to fully discharge between
  /// supply bursts (cf. the decay-to-zero intervals in Fig 7).
  void set_bleed(Ohms bleed_resistance);
  [[nodiscard]] Ohms bleed() const noexcept { return bleed_; }

  /// Advances the node from `t` by `dt` using `substeps` semi-implicit Euler
  /// substeps. The load current is sampled at the start-of-substep voltage.
  StepEnergy step(Seconds t, Seconds dt, const SupplyDriver& driver,
                  const Load& load, int substeps = 4);

  /// Forces the node voltage (tests; initial conditions).
  void set_voltage(Volts v);

 private:
  Farads capacitance_;
  Volts voltage_;
  Ohms bleed_ = 0.0;  // 0 = no bleed
};

}  // namespace edc::circuit
