#include "edc/circuit/comparator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edc/circuit/supply_node.h"
#include "edc/common/check.h"

namespace edc::circuit {

Comparator::Comparator(std::string name, Volts threshold, Volts hysteresis)
    : name_(std::move(name)), threshold_(threshold), hysteresis_(hysteresis) {
  EDC_CHECK(threshold >= 0.0, "threshold must be non-negative");
  EDC_CHECK(hysteresis >= 0.0, "hysteresis must be non-negative");
}

void Comparator::reset(Volts v) { output_high_ = v > rising_trip(); }

void Comparator::set_threshold(Volts threshold) {
  EDC_CHECK(threshold >= 0.0, "threshold must be non-negative");
  threshold_ = threshold;
}

std::optional<ComparatorEvent> Comparator::update(Volts v_prev, Seconds t_prev,
                                                  Volts v_now, Seconds t_now) {
  const Volts trip = output_high_ ? falling_trip() : rising_trip();
  const bool crossed =
      output_high_ ? (v_now <= trip && v_prev > trip) : (v_now >= trip && v_prev < trip);
  if (!crossed) {
    // Handle the degenerate case where the step lands exactly on the trip
    // from an equal previous value: no edge.
    return std::nullopt;
  }
  const double denom = v_now - v_prev;
  const double frac = denom == 0.0 ? 1.0 : std::clamp((trip - v_prev) / denom, 0.0, 1.0);
  ComparatorEvent event;
  event.name = name_;
  event.edge = output_high_ ? Edge::falling : Edge::rising;
  event.time = t_prev + (t_now - t_prev) * frac;
  event.threshold = trip;
  output_high_ = !output_high_;
  return event;
}

std::size_t ComparatorBank::add(Comparator comparator) {
  comparators_.push_back(std::move(comparator));
  return comparators_.size() - 1;
}

std::vector<ComparatorEvent> ComparatorBank::update(Volts v_prev, Seconds t_prev,
                                                    Volts v_now, Seconds t_now) {
  std::vector<ComparatorEvent> events;
  for (auto& comparator : comparators_) {
    if (auto event = comparator.update(v_prev, t_prev, v_now, t_now)) {
      events.push_back(*std::move(event));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const ComparatorEvent& a, const ComparatorEvent& b) {
              return a.time < b.time;
            });
  return events;
}

void ComparatorBank::reset(Volts v) {
  for (auto& comparator : comparators_) comparator.reset(v);
}

Seconds ComparatorBank::plan_falling_crossing(const DecaySolution& decay,
                                              Volts* trip_out) const {
  // The decay is monotone, so the earliest crossing belongs to the highest
  // relevant trip; tracking the max trip and converting once keeps the
  // time/trip pair consistent.
  Volts highest = -1.0;
  for (const auto& comparator : comparators_) {
    if (!comparator.output()) continue;  // rising trips cannot fire on a decay
    const Volts trip = comparator.falling_trip();
    // update() needs v_prev strictly above the trip; a decay starting at or
    // below it can never supply that, so such comparators stay latched. A
    // negative trip (hysteresis wider than twice the threshold) can never
    // fire either — the node clamps at ground.
    if (trip >= decay.v0 || trip < 0.0) continue;
    highest = std::max(highest, trip);
  }
  if (highest < 0.0) return std::numeric_limits<Seconds>::infinity();
  if (trip_out != nullptr) *trip_out = highest;
  return decay.time_to_reach(highest);
}

Seconds ComparatorBank::plan_ramp_crossing(const LinearRampSolution& ramp,
                                           Volts err_pad, Seconds t_max,
                                           Volts* trip_out) const {
  Seconds earliest = std::numeric_limits<Seconds>::infinity();
  Volts binding = 0.0;
  for (const auto& comparator : comparators_) {
    const Volts trip =
        comparator.output() ? comparator.falling_trip() : comparator.rising_trip();
    // A negative falling trip can never fire — the node clamps at ground
    // (and ramp spans additionally certify a positive voltage floor).
    if (trip < 0.0) continue;
    Seconds entry;
    if (ramp.v0 > trip + err_pad) {
      entry = ramp.time_to_reach(trip + err_pad, t_max);
    } else if (ramp.v0 < trip - err_pad) {
      entry = ramp.time_to_reach(trip - err_pad, t_max);
    } else {
      entry = 0.0;  // the start already sits inside the trip's band
    }
    if (entry < earliest) {
      earliest = entry;
      binding = trip;
    }
  }
  if (trip_out != nullptr && std::isfinite(earliest)) *trip_out = binding;
  return earliest;
}

Seconds ComparatorBank::plan_rising_crossing(const ChargeSolution& charge,
                                             Volts* trip_out) const {
  // The rise is monotone, so the earliest crossing belongs to the lowest
  // relevant trip; tracking the min trip and converting once keeps the
  // time/trip pair consistent.
  Volts lowest = std::numeric_limits<Volts>::infinity();
  for (const auto& comparator : comparators_) {
    if (comparator.output()) continue;  // falling trips cannot fire on a rise
    const Volts trip = comparator.rising_trip();
    // update() needs v_prev strictly below the trip; a rise starting at or
    // above it can never supply that, so such comparators stay latched.
    if (trip <= charge.v0) continue;
    lowest = std::min(lowest, trip);
  }
  if (std::isinf(lowest)) return std::numeric_limits<Seconds>::infinity();
  if (trip_out != nullptr) *trip_out = lowest;
  return charge.time_to_reach(lowest);
}

}  // namespace edc::circuit
