#include "edc/circuit/supply_node.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edc/common/check.h"

namespace edc::circuit {

namespace {
constexpr Seconds kForever = std::numeric_limits<Seconds>::infinity();
}  // namespace

Volts DecaySolution::voltage_at(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  if (v0 <= 0.0) return 0.0;
  Volts v = 0.0;
  if (bleed > 0.0) {
    // V(s) = (v0 - v_inf) e^{-s/tau} + v_inf with v_inf = -load*R.
    const Seconds tau = bleed * capacitance;
    const Volts v_inf = -load * bleed;
    v = (v0 - v_inf) * std::exp(-elapsed / tau) + v_inf;
  } else {
    // Pure constant-current discharge: a straight ramp.
    v = v0 - load * elapsed / capacitance;
  }
  return v > 0.0 ? v : 0.0;
}

Seconds DecaySolution::time_to_zero() const {
  if (v0 <= 0.0) return 0.0;
  if (load <= 0.0) return kForever;  // exponential tails never touch ground
  if (bleed > 0.0) {
    const Seconds tau = bleed * capacitance;
    return tau * std::log1p(v0 / (load * bleed));
  }
  return capacitance * v0 / load;
}

Seconds DecaySolution::time_to_reach(Volts v) const {
  EDC_ASSERT(v >= 0.0);
  if (v >= v0) return 0.0;
  if (v <= 0.0) return time_to_zero();
  if (bleed > 0.0) {
    // Invert V(s) = (v0 - v_inf) e^{-s/tau} + v_inf. The asymptote v_inf is
    // -load*bleed <= 0, so any v in (0, v0) lies strictly above it and the
    // logarithm is well-defined.
    const Seconds tau = bleed * capacitance;
    const Volts v_inf = -load * bleed;
    return tau * std::log((v0 - v_inf) / (v - v_inf));
  }
  if (load <= 0.0) return kForever;  // no bleed, no load: V holds at v0
  return capacitance * (v0 - v) / load;
}

Joules DecaySolution::load_energy(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  if (v0 <= 0.0 || load <= 0.0) return 0.0;
  const Seconds s = std::min(elapsed, time_to_zero());
  double v_integral = 0.0;  // integral of V over [0, s]
  if (bleed > 0.0) {
    const Seconds tau = bleed * capacitance;
    const Volts v_inf = -load * bleed;
    v_integral = (v0 - v_inf) * tau * -std::expm1(-s / tau) + v_inf * s;
  } else {
    v_integral = v0 * s - load * s * s / (2.0 * capacitance);
  }
  return std::max(load * v_integral, 0.0);
}

Volts ChargeSolution::asymptote() const {
  const double conductance = 1.0 / r_series + (bleed > 0.0 ? 1.0 / bleed : 0.0);
  return (v_source / r_series - load) / conductance;
}

Seconds ChargeSolution::tau() const {
  const double conductance = 1.0 / r_series + (bleed > 0.0 ? 1.0 / bleed : 0.0);
  return capacitance / conductance;
}

Volts ChargeSolution::voltage_at(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  const Volts v_inf = asymptote();
  const Volts v = v_inf + (v0 - v_inf) * std::exp(-elapsed / tau());
  return v > 0.0 ? v : 0.0;
}

Seconds ChargeSolution::time_to_reach(Volts v) const {
  const Volts v_inf = asymptote();
  if (v0 < v_inf) {
    if (v <= v0) return 0.0;
    if (v >= v_inf) return kForever;
  } else if (v0 > v_inf) {
    if (v >= v0) return 0.0;
    if (v <= v_inf) return kForever;
  } else {
    return v == v0 ? 0.0 : kForever;
  }
  // Both differences share a sign, so the logarithm's argument is > 1.
  return tau() * std::log((v_inf - v0) / (v_inf - v));
}

Joules ChargeSolution::load_energy(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  if (load <= 0.0) return 0.0;
  const Volts v_inf = asymptote();
  const Seconds time_constant = tau();
  const double v_integral =
      v_inf * elapsed +
      (v0 - v_inf) * time_constant * -std::expm1(-elapsed / time_constant);
  return std::max(load * v_integral, 0.0);
}

Joules ChargeSolution::bleed_energy(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  if (bleed <= 0.0) return 0.0;
  const Volts v_inf = asymptote();
  const Volts dv = v0 - v_inf;
  const Seconds time_constant = tau();
  // integral of (v_inf + dv e^{-s/tau})^2 over [0, elapsed].
  const double sq_integral =
      v_inf * v_inf * elapsed +
      2.0 * v_inf * dv * time_constant * -std::expm1(-elapsed / time_constant) +
      dv * dv * 0.5 * time_constant * -std::expm1(-2.0 * elapsed / time_constant);
  return std::max(sq_integral / bleed, 0.0);
}

SupplyNode::SupplyNode(Farads capacitance, Volts v_initial)
    : capacitance_(capacitance), voltage_(v_initial) {
  EDC_CHECK(capacitance > 0.0, "capacitance must be positive");
  EDC_CHECK(v_initial >= 0.0, "initial voltage must be non-negative");
}

SupplyNode::StepEnergy SupplyNode::step(Seconds t, Seconds dt,
                                        const SupplyDriver& driver, const Load& load,
                                        int substeps) {
  EDC_CHECK(dt > 0.0, "dt must be positive");
  EDC_CHECK(substeps >= 1, "need at least one substep");
  StepEnergy energy;
  const Seconds h = dt / static_cast<double>(substeps);
  for (int i = 0; i < substeps; ++i) {
    const Seconds t_sub = t + h * static_cast<double>(i);
    const Amps i_in = driver.current_into(voltage_, t_sub);
    const Amps i_out = load.current_draw(voltage_, t_sub);
    const Amps i_bleed = bleed_ > 0.0 ? voltage_ / bleed_ : 0.0;
    EDC_ASSERT(i_in >= 0.0 && i_out >= 0.0);
    Volts v_next = voltage_ + (i_in - i_out - i_bleed) / capacitance_ * h;
    v_next = std::max(v_next, 0.0);  // node cannot go below ground
    // Energy delivered/drawn during the substep, evaluated at the mean
    // voltage so the ledger balances with the 0.5*C*V^2 stored energy.
    const Volts v_mid = 0.5 * (voltage_ + v_next);
    energy.harvested += i_in * v_mid * h;
    energy.consumed += i_out * v_mid * h;
    energy.dissipated += i_bleed * v_mid * h;
    voltage_ = v_next;
  }
  return energy;
}

void SupplyNode::step_lanes(Seconds t, Seconds dt, const SupplyDriver& driver,
                            int substeps, const SoaLanes& lanes) {
  EDC_CHECK(dt > 0.0, "dt must be positive");
  EDC_CHECK(substeps >= 1, "need at least one substep");
  const std::size_t n = lanes.count;
  double* v = lanes.v;
  const double* cap = lanes.capacitance;
  const double* bleed = lanes.bleed;
  const double* i_load = lanes.i_load;
  double* harvested = lanes.harvested;
  double* consumed = lanes.consumed;
  double* dissipated = lanes.dissipated;
  for (std::size_t l = 0; l < n; ++l) {
    harvested[l] = 0.0;
    consumed[l] = 0.0;
    dissipated[l] = 0.0;
  }

  const Seconds h = dt / static_cast<double>(substeps);
  // One substep over all lanes with the injected current supplied by
  // `i_in_of(v_lane)`. The body is the scalar step() substep verbatim —
  // same expression structure, same evaluation order — so each lane's
  // trajectory and energy split match the scalar path bit-for-bit. Each
  // lane is a pure element-wise recurrence, so the loop vectorizes.
  const auto run_lanes = [&](auto i_in_of) {
#pragma omp simd
    for (std::size_t l = 0; l < n; ++l) {
      const double v_lane = v[l];
      const double i_in = i_in_of(v_lane);
      const double i_out = i_load[l];
      const double i_bleed = bleed[l] > 0.0 ? v_lane / bleed[l] : 0.0;
      double v_next = v_lane + (i_in - i_out - i_bleed) / cap[l] * h;
      v_next = std::max(v_next, 0.0);  // node cannot go below ground
      const double v_mid = 0.5 * (v_lane + v_next);
      harvested[l] += i_in * v_mid * h;
      consumed[l] += i_out * v_mid * h;
      dissipated[l] += i_bleed * v_mid * h;
      v[l] = v_next;
    }
  };
  for (int i = 0; i < substeps; ++i) {
    const Seconds t_sub = t + h * static_cast<double>(i);
    // One shared source evaluation per substep instant, broadcast across
    // the lanes via the reconstruction contract on DriverSample.
    const DriverSample sample = driver.batch_sample(t_sub);
    switch (sample.kind) {
      case DriverSample::Kind::quiet:
        run_lanes([](double) { return 0.0; });
        break;
      case DriverSample::Kind::rectified:
        run_lanes([v_open = sample.v_open, r = sample.r_series](double v_lane) {
          return v_open <= v_lane ? 0.0 : (v_open - v_lane) / r;
        });
        break;
      case DriverSample::Kind::harvester:
        run_lanes([p = sample.power, v_ceiling = sample.v_ceiling,
                   i_max = sample.i_max, v_floor = sample.v_floor](double v_lane) {
          if (v_lane >= v_ceiling) return 0.0;
          if (p <= 0.0) return 0.0;
          const double v_eff = std::max(v_lane, v_floor);
          return std::min(p / v_eff, i_max);
        });
        break;
      case DriverSample::Kind::none:
        EDC_CHECK(false, "step_lanes needs a batchable driver");
    }
  }
}

void SupplyNode::set_bleed(Ohms bleed_resistance) {
  EDC_CHECK(bleed_resistance >= 0.0, "bleed resistance must be non-negative");
  bleed_ = bleed_resistance;
}

void SupplyNode::set_voltage(Volts v) {
  EDC_CHECK(v >= 0.0, "voltage must be non-negative");
  voltage_ = v;
}

DecaySolution SupplyNode::decay_from(Volts v0, Amps load) const {
  EDC_CHECK(v0 >= 0.0, "decay start voltage must be non-negative");
  EDC_CHECK(load >= 0.0, "load current must be non-negative");
  return DecaySolution{capacitance_, bleed_, load, v0};
}

ChargeSolution SupplyNode::charge_from(Volts v0, Volts v_source, Ohms r_series,
                                       Amps load) const {
  EDC_CHECK(v0 >= 0.0, "charge start voltage must be non-negative");
  EDC_CHECK(r_series > 0.0, "series resistance must be positive");
  EDC_CHECK(load >= 0.0, "load current must be non-negative");
  return ChargeSolution{capacitance_, v_source, r_series, bleed_, load, v0};
}

}  // namespace edc::circuit
