#include "edc/circuit/supply_node.h"

#include <algorithm>

#include "edc/common/check.h"

namespace edc::circuit {

SupplyNode::SupplyNode(Farads capacitance, Volts v_initial)
    : capacitance_(capacitance), voltage_(v_initial) {
  EDC_CHECK(capacitance > 0.0, "capacitance must be positive");
  EDC_CHECK(v_initial >= 0.0, "initial voltage must be non-negative");
}

SupplyNode::StepEnergy SupplyNode::step(Seconds t, Seconds dt,
                                        const SupplyDriver& driver, const Load& load,
                                        int substeps) {
  EDC_CHECK(dt > 0.0, "dt must be positive");
  EDC_CHECK(substeps >= 1, "need at least one substep");
  StepEnergy energy;
  const Seconds h = dt / static_cast<double>(substeps);
  for (int i = 0; i < substeps; ++i) {
    const Seconds t_sub = t + h * static_cast<double>(i);
    const Amps i_in = driver.current_into(voltage_, t_sub);
    const Amps i_out = load.current_draw(voltage_, t_sub);
    const Amps i_bleed = bleed_ > 0.0 ? voltage_ / bleed_ : 0.0;
    EDC_ASSERT(i_in >= 0.0 && i_out >= 0.0);
    Volts v_next = voltage_ + (i_in - i_out - i_bleed) / capacitance_ * h;
    v_next = std::max(v_next, 0.0);  // node cannot go below ground
    // Energy delivered/drawn during the substep, evaluated at the mean
    // voltage so the ledger balances with the 0.5*C*V^2 stored energy.
    const Volts v_mid = 0.5 * (voltage_ + v_next);
    energy.harvested += i_in * v_mid * h;
    energy.consumed += i_out * v_mid * h;
    energy.dissipated += i_bleed * v_mid * h;
    voltage_ = v_next;
  }
  return energy;
}

void SupplyNode::set_bleed(Ohms bleed_resistance) {
  EDC_CHECK(bleed_resistance >= 0.0, "bleed resistance must be non-negative");
  bleed_ = bleed_resistance;
}

void SupplyNode::set_voltage(Volts v) {
  EDC_CHECK(v >= 0.0, "voltage must be non-negative");
  voltage_ = v;
}

}  // namespace edc::circuit
