#include "edc/circuit/supply_node.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edc/common/check.h"

namespace edc::circuit {

namespace {
constexpr Seconds kForever = std::numeric_limits<Seconds>::infinity();
}  // namespace

Volts DecaySolution::voltage_at(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  if (v0 <= 0.0) return 0.0;
  Volts v = 0.0;
  if (bleed > 0.0) {
    // V(s) = (v0 - v_inf) e^{-s/tau} + v_inf with v_inf = -load*R.
    const Seconds tau = bleed * capacitance;
    const Volts v_inf = -load * bleed;
    v = (v0 - v_inf) * std::exp(-elapsed / tau) + v_inf;
  } else {
    // Pure constant-current discharge: a straight ramp.
    v = v0 - load * elapsed / capacitance;
  }
  return v > 0.0 ? v : 0.0;
}

Seconds DecaySolution::time_to_zero() const {
  if (v0 <= 0.0) return 0.0;
  if (load <= 0.0) return kForever;  // exponential tails never touch ground
  if (bleed > 0.0) {
    const Seconds tau = bleed * capacitance;
    return tau * std::log1p(v0 / (load * bleed));
  }
  return capacitance * v0 / load;
}

Seconds DecaySolution::time_to_reach(Volts v) const {
  EDC_ASSERT(v >= 0.0);
  if (v >= v0) return 0.0;
  if (v <= 0.0) return time_to_zero();
  if (bleed > 0.0) {
    // Invert V(s) = (v0 - v_inf) e^{-s/tau} + v_inf. The asymptote v_inf is
    // -load*bleed <= 0, so any v in (0, v0) lies strictly above it and the
    // logarithm is well-defined.
    const Seconds tau = bleed * capacitance;
    const Volts v_inf = -load * bleed;
    return tau * std::log((v0 - v_inf) / (v - v_inf));
  }
  if (load <= 0.0) return kForever;  // no bleed, no load: V holds at v0
  return capacitance * (v0 - v) / load;
}

Joules DecaySolution::load_energy(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  if (v0 <= 0.0 || load <= 0.0) return 0.0;
  const Seconds s = std::min(elapsed, time_to_zero());
  double v_integral = 0.0;  // integral of V over [0, s]
  if (bleed > 0.0) {
    const Seconds tau = bleed * capacitance;
    const Volts v_inf = -load * bleed;
    v_integral = (v0 - v_inf) * tau * -std::expm1(-s / tau) + v_inf * s;
  } else {
    v_integral = v0 * s - load * s * s / (2.0 * capacitance);
  }
  return std::max(load * v_integral, 0.0);
}

Volts ChargeSolution::asymptote() const {
  const double conductance = 1.0 / r_series + (bleed > 0.0 ? 1.0 / bleed : 0.0);
  return (v_source / r_series - load) / conductance;
}

Seconds ChargeSolution::tau() const {
  const double conductance = 1.0 / r_series + (bleed > 0.0 ? 1.0 / bleed : 0.0);
  return capacitance / conductance;
}

Volts ChargeSolution::voltage_at(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  const Volts v_inf = asymptote();
  const Volts v = v_inf + (v0 - v_inf) * std::exp(-elapsed / tau());
  return v > 0.0 ? v : 0.0;
}

Seconds ChargeSolution::time_to_reach(Volts v) const {
  const Volts v_inf = asymptote();
  if (v0 < v_inf) {
    if (v <= v0) return 0.0;
    if (v >= v_inf) return kForever;
  } else if (v0 > v_inf) {
    if (v >= v0) return 0.0;
    if (v <= v_inf) return kForever;
  } else {
    return v == v0 ? 0.0 : kForever;
  }
  // Both differences share a sign, so the logarithm's argument is > 1.
  return tau() * std::log((v_inf - v0) / (v_inf - v));
}

Joules ChargeSolution::load_energy(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  if (load <= 0.0) return 0.0;
  const Volts v_inf = asymptote();
  const Seconds time_constant = tau();
  const double v_integral =
      v_inf * elapsed +
      (v0 - v_inf) * time_constant * -std::expm1(-elapsed / time_constant);
  return std::max(load * v_integral, 0.0);
}

Joules ChargeSolution::bleed_energy(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  if (bleed <= 0.0) return 0.0;
  const Volts v_inf = asymptote();
  const Volts dv = v0 - v_inf;
  const Seconds time_constant = tau();
  // integral of (v_inf + dv e^{-s/tau})^2 over [0, elapsed].
  const double sq_integral =
      v_inf * v_inf * elapsed +
      2.0 * v_inf * dv * time_constant * -std::expm1(-elapsed / time_constant) +
      dv * dv * 0.5 * time_constant * -std::expm1(-2.0 * elapsed / time_constant);
  return std::max(sq_integral / bleed, 0.0);
}

namespace {

double node_conductance(Ohms r_series, Ohms bleed) {
  return 1.0 / r_series + (bleed > 0.0 ? 1.0 / bleed : 0.0);
}

}  // namespace

Seconds LinearRampSolution::tau() const {
  return capacitance / node_conductance(r_series, bleed);
}

double LinearRampSolution::drift() const {
  return slope / (r_series * node_conductance(r_series, bleed));
}

Volts LinearRampSolution::offset() const {
  const double g = node_conductance(r_series, bleed);
  return (v_source0 / r_series - load - capacitance * drift()) / g;
}

Volts LinearRampSolution::voltage_at(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  const Volts a = offset();
  const Volts v =
      a + drift() * elapsed + (v0 - a) * std::exp(-elapsed / tau());
  return v > 0.0 ? v : 0.0;
}

Seconds LinearRampSolution::time_to_reach(Volts v, Seconds t_max) const {
  EDC_ASSERT(t_max >= 0.0);
  const Volts a = offset();
  const double b = drift();
  const Volts c = v0 - a;
  const Seconds time_constant = tau();
  const auto raw = [&](Seconds t) {
    return a + b * t + c * std::exp(-t / time_constant);
  };
  // V'(t) = b - (c/tau) e^{-t/tau} is monotone, so the trajectory has at
  // most one interior extremum, at t* = -tau ln(b*tau/c) when the log
  // argument lies in (0, 1]. Split the window there into monotone pieces.
  Seconds pieces[3] = {0.0, t_max, t_max};
  int n_pieces = 1;
  if (c != 0.0 && b != 0.0) {
    const double arg = b * time_constant / c;
    if (arg > 0.0 && arg <= 1.0) {
      const Seconds t_star = -time_constant * std::log(arg);
      if (t_star > 0.0 && t_star < t_max) {
        pieces[1] = t_star;
        n_pieces = 2;
      }
    }
  }
  for (int p = 0; p < n_pieces; ++p) {
    Seconds lo = pieces[p];
    Seconds hi = pieces[p + 1];
    const Volts v_lo = raw(lo);
    const Volts v_hi = raw(hi);
    if (v == v_lo) return lo;
    const bool rising = v_hi >= v_lo;
    const bool inside = rising ? (v_lo < v && v <= v_hi)
                               : (v_hi <= v && v < v_lo);
    if (!inside) continue;
    // Safeguarded bisection on the monotone piece. Returns the *lower*
    // bracket, so the reported instant is at or just before the true
    // crossing — the conservative side for every planner (a span capped at
    // ceil(time/dt)-1 then provably ends before the crossing step no
    // matter how loose the bracket is). That soundness-by-direction is
    // what lets the loop stop at ~1e-6 of the piece width instead of
    // grinding to one ulp: each iteration costs an exp(), and this is the
    // hot inner call of the ramp-span crossing planners.
    const Seconds width_tol = (hi - lo) * 9.5e-7 + 1e-15;
    for (int i = 0; i < 64 && hi - lo > width_tol; ++i) {
      const Seconds mid = 0.5 * (lo + hi);
      if (mid <= lo || mid >= hi) break;
      const bool before = rising ? (raw(mid) < v) : (raw(mid) > v);
      if (before) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  return kForever;
}

Volts LinearRampSolution::min_voltage(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  const Volts a = offset();
  const double b = drift();
  const Volts c = v0 - a;
  const Seconds time_constant = tau();
  const auto raw = [&](Seconds t) {
    return a + b * t + c * std::exp(-t / time_constant);
  };
  Volts lo = std::min(raw(0.0), raw(elapsed));
  if (c != 0.0 && b != 0.0) {
    const double arg = b * time_constant / c;
    if (arg > 0.0 && arg <= 1.0) {
      const Seconds t_star = -time_constant * std::log(arg);
      if (t_star > 0.0 && t_star < elapsed) lo = std::min(lo, raw(t_star));
    }
  }
  return lo;
}

Volts LinearRampSolution::max_voltage(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  const Volts a = offset();
  const double b = drift();
  const Volts c = v0 - a;
  const Seconds time_constant = tau();
  const auto raw = [&](Seconds t) {
    return a + b * t + c * std::exp(-t / time_constant);
  };
  Volts hi = std::max(raw(0.0), raw(elapsed));
  if (c != 0.0 && b != 0.0) {
    const double arg = b * time_constant / c;
    if (arg > 0.0 && arg <= 1.0) {
      const Seconds t_star = -time_constant * std::log(arg);
      if (t_star > 0.0 && t_star < elapsed) hi = std::max(hi, raw(t_star));
    }
  }
  return hi;
}

Volts LinearRampSolution::min_source_margin(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  const Volts a = offset();
  const double b = drift();
  const Volts c = v0 - a;
  const Seconds time_constant = tau();
  // D(t) = Vs(t) - V(t) = (v_source0 - a) + (slope - b) t - c e^{-t/tau}.
  // D'(t) = (slope - b) + (c/tau) e^{-t/tau} is monotone, so the margin's
  // minimum sits at an endpoint or the single critical point.
  const auto margin = [&](Seconds t) {
    return (v_source0 - a) + (slope - b) * t -
           c * std::exp(-t / time_constant);
  };
  Volts lo = std::min(margin(0.0), margin(elapsed));
  if (c != 0.0 && slope != b) {
    const double arg = (b - slope) * time_constant / c;
    if (arg > 0.0 && arg <= 1.0) {
      const Seconds t_crit = -time_constant * std::log(arg);
      if (t_crit > 0.0 && t_crit < elapsed) lo = std::min(lo, margin(t_crit));
    }
  }
  return lo;
}

Joules LinearRampSolution::load_energy(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  if (load <= 0.0) return 0.0;
  const Volts a = offset();
  const double b = drift();
  const Volts c = v0 - a;
  const Seconds time_constant = tau();
  const double v_integral =
      a * elapsed + 0.5 * b * elapsed * elapsed +
      c * time_constant * -std::expm1(-elapsed / time_constant);
  return std::max(load * v_integral, 0.0);
}

Joules LinearRampSolution::bleed_energy(Seconds elapsed) const {
  EDC_ASSERT(elapsed >= 0.0);
  if (bleed <= 0.0) return 0.0;
  const Volts a = offset();
  const double b = drift();
  const Volts c = v0 - a;
  const Seconds time_constant = tau();
  const double s = elapsed;
  const double e1 = -std::expm1(-s / time_constant);        // 1 - e^{-s/tau}
  const double e2 = -std::expm1(-2.0 * s / time_constant);  // 1 - e^{-2s/tau}
  // integral of t e^{-t/tau} over [0, s].
  const double t_exp = time_constant * time_constant * e1 -
                       time_constant * s * std::exp(-s / time_constant);
  // integral of (a + b t + c e^{-t/tau})^2 over [0, s].
  const double sq_integral = a * a * s + a * b * s * s +
                             b * b * s * s * s / 3.0 +
                             2.0 * c * (a * time_constant * e1 + b * t_exp) +
                             c * c * 0.5 * time_constant * e2;
  return std::max(sq_integral / bleed, 0.0);
}

SupplyNode::SupplyNode(Farads capacitance, Volts v_initial)
    : capacitance_(capacitance), voltage_(v_initial) {
  EDC_CHECK(capacitance > 0.0, "capacitance must be positive");
  EDC_CHECK(v_initial >= 0.0, "initial voltage must be non-negative");
}

SupplyNode::StepEnergy SupplyNode::step(Seconds t, Seconds dt,
                                        const SupplyDriver& driver, const Load& load,
                                        int substeps) {
  EDC_CHECK(dt > 0.0, "dt must be positive");
  EDC_CHECK(substeps >= 1, "need at least one substep");
  StepEnergy energy;
  const Seconds h = dt / static_cast<double>(substeps);
  for (int i = 0; i < substeps; ++i) {
    const Seconds t_sub = t + h * static_cast<double>(i);
    const Amps i_in = driver.current_into(voltage_, t_sub);
    const Amps i_out = load.current_draw(voltage_, t_sub);
    const Amps i_bleed = bleed_ > 0.0 ? voltage_ / bleed_ : 0.0;
    EDC_ASSERT(i_in >= 0.0 && i_out >= 0.0);
    Volts v_next = voltage_ + (i_in - i_out - i_bleed) / capacitance_ * h;
    v_next = std::max(v_next, 0.0);  // node cannot go below ground
    // Energy delivered/drawn during the substep, evaluated at the mean
    // voltage so the ledger balances with the 0.5*C*V^2 stored energy.
    const Volts v_mid = 0.5 * (voltage_ + v_next);
    energy.harvested += i_in * v_mid * h;
    energy.consumed += i_out * v_mid * h;
    energy.dissipated += i_bleed * v_mid * h;
    voltage_ = v_next;
  }
  return energy;
}

void SupplyNode::step_lanes(Seconds t, Seconds dt, const SupplyDriver& driver,
                            int substeps, const SoaLanes& lanes) {
  EDC_CHECK(dt > 0.0, "dt must be positive");
  EDC_CHECK(substeps >= 1, "need at least one substep");
  const std::size_t n = lanes.count;
  double* v = lanes.v;
  const double* cap = lanes.capacitance;
  const double* bleed = lanes.bleed;
  const double* i_load = lanes.i_load;
  double* harvested = lanes.harvested;
  double* consumed = lanes.consumed;
  double* dissipated = lanes.dissipated;
  for (std::size_t l = 0; l < n; ++l) {
    harvested[l] = 0.0;
    consumed[l] = 0.0;
    dissipated[l] = 0.0;
  }

  const Seconds h = dt / static_cast<double>(substeps);
  // One substep over all lanes with the injected current supplied by
  // `i_in_of(v_lane)`. The body is the scalar step() substep verbatim —
  // same expression structure, same evaluation order — so each lane's
  // trajectory and energy split match the scalar path bit-for-bit. Each
  // lane is a pure element-wise recurrence, so the loop vectorizes.
  const auto run_lanes = [&](auto i_in_of) {
#pragma omp simd
    for (std::size_t l = 0; l < n; ++l) {
      const double v_lane = v[l];
      const double i_in = i_in_of(v_lane);
      const double i_out = i_load[l];
      const double i_bleed = bleed[l] > 0.0 ? v_lane / bleed[l] : 0.0;
      double v_next = v_lane + (i_in - i_out - i_bleed) / cap[l] * h;
      v_next = std::max(v_next, 0.0);  // node cannot go below ground
      const double v_mid = 0.5 * (v_lane + v_next);
      harvested[l] += i_in * v_mid * h;
      consumed[l] += i_out * v_mid * h;
      dissipated[l] += i_bleed * v_mid * h;
      v[l] = v_next;
    }
  };
  for (int i = 0; i < substeps; ++i) {
    const Seconds t_sub = t + h * static_cast<double>(i);
    // One shared source evaluation per substep instant, broadcast across
    // the lanes via the reconstruction contract on DriverSample.
    const DriverSample sample = driver.batch_sample(t_sub);
    switch (sample.kind) {
      case DriverSample::Kind::quiet:
        run_lanes([](double) { return 0.0; });
        break;
      case DriverSample::Kind::rectified:
        run_lanes([v_open = sample.v_open, r = sample.r_series](double v_lane) {
          return v_open <= v_lane ? 0.0 : (v_open - v_lane) / r;
        });
        break;
      case DriverSample::Kind::harvester:
        run_lanes([p = sample.power, v_ceiling = sample.v_ceiling,
                   i_max = sample.i_max, v_floor = sample.v_floor](double v_lane) {
          if (v_lane >= v_ceiling) return 0.0;
          if (p <= 0.0) return 0.0;
          const double v_eff = std::max(v_lane, v_floor);
          return std::min(p / v_eff, i_max);
        });
        break;
      case DriverSample::Kind::none:
        EDC_CHECK(false, "step_lanes needs a batchable driver");
    }
  }
}

void SupplyNode::set_bleed(Ohms bleed_resistance) {
  EDC_CHECK(bleed_resistance >= 0.0, "bleed resistance must be non-negative");
  bleed_ = bleed_resistance;
}

void SupplyNode::set_voltage(Volts v) {
  EDC_CHECK(v >= 0.0, "voltage must be non-negative");
  voltage_ = v;
}

DecaySolution SupplyNode::decay_from(Volts v0, Amps load) const {
  EDC_CHECK(v0 >= 0.0, "decay start voltage must be non-negative");
  EDC_CHECK(load >= 0.0, "load current must be non-negative");
  return DecaySolution{capacitance_, bleed_, load, v0};
}

ChargeSolution SupplyNode::charge_from(Volts v0, Volts v_source, Ohms r_series,
                                       Amps load) const {
  EDC_CHECK(v0 >= 0.0, "charge start voltage must be non-negative");
  EDC_CHECK(r_series > 0.0, "series resistance must be positive");
  EDC_CHECK(load >= 0.0, "load current must be non-negative");
  return ChargeSolution{capacitance_, v_source, r_series, bleed_, load, v0};
}

LinearRampSolution SupplyNode::ramp_from(Volts v0, Volts v_source0,
                                         double slope, Ohms r_series,
                                         Amps load) const {
  EDC_CHECK(v0 >= 0.0, "ramp start voltage must be non-negative");
  EDC_CHECK(r_series > 0.0, "series resistance must be positive");
  EDC_CHECK(load >= 0.0, "load current must be non-negative");
  return LinearRampSolution{capacitance_, v_source0, slope,
                            r_series,     bleed_,    load, v0};
}

}  // namespace edc::circuit
